// Ablation: the Chunk Folding tuning loop. A skewed workload hammers one
// extension's columns; the heat profile observed by the transformation
// layer feeds AdviseConventionalExtensions, and the advised deployment
// (hot extension in a conventional table) is compared against the
// untuned all-chunked deployment — "divide the meta-data budget between
// application-specific conventional tables and Chunk Tables" (§1.2),
// driven by data instead of guesswork.
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "core/chunk_folding_layout.h"
#include "core/heat.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace bench {
namespace {

using mapping::AppSchema;
using mapping::ChunkFoldingLayout;
using mapping::ChunkFoldingOptions;

constexpr int kTenants = 16;
constexpr int kRows = 60;
constexpr int kActions = 2000;

Status Load(ChunkFoldingLayout* layout) {
  Rng rng(5);
  for (TenantId t = 0; t < kTenants; ++t) {
    MTDB_RETURN_IF_ERROR(layout->CreateTenant(t));
    // project_opportunity is a *wide* extension (5 columns, 3 of which
    // land in string slots): folded, it spans two chunks and every read
    // of its full width pays an aligning join.
    MTDB_RETURN_IF_ERROR(layout->EnableExtension(t, "project_opportunity"));
    for (int64_t id = 1; id <= kRows; ++id) {
      MTDB_RETURN_IF_ERROR(
          layout
              ->Execute(t, "INSERT INTO opportunity (id, account_id, name, "
                           "status, site, permits, inspection, architect, "
                           "bid_total) VALUES (?, 0, ?, 'open', ?, ?, ?, ?, ?)",
                        {Value::Int64(id), Value::String(rng.Word(5, 10)),
                         Value::String("site" + std::to_string(id % 9)),
                         Value::Int32(static_cast<int32_t>(id % 40)),
                         Value::Date(static_cast<int32_t>(13000 + id)),
                         Value::String(rng.Word(6, 12)),
                         Value::Double(static_cast<double>(id) * 100.0)})
              .status());
    }
  }
  return Status::OK();
}

/// Hot-extension workload: queries read the full width of the wide
/// extension, so the folded layout pays chunk-aligning joins every time.
Result<double> RunSkewedWorkload(ChunkFoldingLayout* layout) {
  Rng rng(9);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kActions; ++i) {
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
    Result<QueryResult> r = layout->Query(
        t,
        "SELECT site, permits, inspection, architect, bid_total "
        "FROM opportunity WHERE site = ?",
        {Value::String("site" + std::to_string(rng.Uniform(0, 8)))});
    MTDB_RETURN_IF_ERROR(r.status());
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

int Main() {
  AppSchema app = testbed::BuildCrmAppSchema();
  std::printf("=== Chunk Folding tuning: all-chunked vs. advisor-tuned ===\n");

  // Phase 1: observe the workload on the untuned deployment.
  Database untuned_db;
  ChunkFoldingLayout untuned(&untuned_db, &app);
  if (!untuned.Bootstrap().ok() || !Load(&untuned).ok()) return 1;
  auto untuned_time = RunSkewedWorkload(&untuned);
  if (!untuned_time.ok()) {
    std::fprintf(stderr, "untuned: %s\n",
                 untuned_time.status().ToString().c_str());
    return 1;
  }

  // Phase 2: ask the advisor what the heat says.
  auto advised =
      AdviseConventionalExtensions(app, untuned.heat_profile(), 1);
  std::printf("advisor (from %llu observed column accesses): ",
              static_cast<unsigned long long>(untuned.heat_profile().total()));
  for (const auto& e : advised) std::printf("%s ", e.c_str());
  std::printf("\n");

  // Phase 3: redeploy with the hot extension conventional and rerun.
  Database tuned_db;
  ChunkFoldingOptions options;
  options.conventional_extensions = advised;
  ChunkFoldingLayout tuned(&tuned_db, &app, options);
  if (!tuned.Bootstrap().ok() || !Load(&tuned).ok()) return 1;
  auto tuned_time = RunSkewedWorkload(&tuned);
  if (!tuned_time.ok()) return 1;

  double speedup = *untuned_time / *tuned_time;
  std::printf("\n%-22s %8.3f s  (%zu tables, %llu KB meta)\n",
              "all-chunked:", *untuned_time, untuned_db.Stats().tables,
              static_cast<unsigned long long>(
                  untuned_db.Stats().metadata_bytes / 1024));
  std::printf("%-22s %8.3f s  (%zu tables, %llu KB meta)\n",
              "advisor-tuned:", *tuned_time, tuned_db.Stats().tables,
              static_cast<unsigned long long>(
                  tuned_db.Stats().metadata_bytes / 1024));
  std::printf("speedup: %.2fx\n", speedup);
  std::printf(
      "\nExpected shape: the tuned deployment spends one extra table of\n"
      "meta-data to serve the hot extension conventionally and wins on\n"
      "the skewed workload (the paper's 'most heavily-utilized parts into\n"
      "conventional tables' principle, closed-loop).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
