#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

/// Property test: every extensible layout must produce exactly the same
/// logical results for the same randomized workload — the mapping is an
/// implementation detail the application can never observe (§3's promise
/// that generic structures hide behind the query-transformation layer).
///
/// The reference model is a plain in-memory table per tenant.
struct ModelRow {
  int64_t aid;
  std::string name;
  // Extension columns (only meaningful for the tenant that has them).
  std::string hospital;
  int64_t beds = -1;      // -1 encodes NULL
  int64_t dealers = -1;
};

class LayoutEquivalenceTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(LayoutEquivalenceTest, RandomizedWorkloadMatchesModel) {
  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeLayout(GetParam(), &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(17).ok());
  ASSERT_TRUE(layout->CreateTenant(35).ok());
  ASSERT_TRUE(layout->EnableExtension(17, "healthcare").ok());

  std::vector<ModelRow> model17, model35;
  Rng rng(GetParam() == LayoutKind::kPivot ? 1 : 2);
  int64_t next_aid = 1;

  for (int op = 0; op < 120; ++op) {
    int choice = static_cast<int>(rng.Uniform(0, 9));
    if (choice < 5) {
      // Insert into tenant 17 (with extension columns).
      int64_t aid = next_aid++;
      std::string name = rng.Word(3, 8);
      std::string hospital = rng.Word(3, 8);
      int64_t beds = rng.Uniform(1, 2000);
      ASSERT_TRUE(layout
                      ->Execute(17,
                                "INSERT INTO account (aid, name, hospital, "
                                "beds) VALUES (?, ?, ?, ?)",
                                {Value::Int64(aid), Value::String(name),
                                 Value::String(hospital), Value::Int64(beds)})
                      .ok());
      model17.push_back({aid, name, hospital, beds, -1});
    } else if (choice < 7) {
      // Insert into tenant 35 (base columns only).
      int64_t aid = next_aid++;
      std::string name = rng.Word(3, 8);
      ASSERT_TRUE(
          layout
              ->Execute(35, "INSERT INTO account (aid, name) VALUES (?, ?)",
                        {Value::Int64(aid), Value::String(name)})
              .ok());
      model35.push_back({aid, name, "", -1, -1});
    } else if (choice < 8 && !model17.empty()) {
      // Update a random tenant-17 row's beds.
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(model17.size()) - 1));
      int64_t new_beds = rng.Uniform(1, 5000);
      auto n = layout->Execute(
          17, "UPDATE account SET beds = ? WHERE aid = ?",
          {Value::Int64(new_beds), Value::Int64(model17[i].aid)});
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      ASSERT_EQ(*n, 1);
      model17[i].beds = new_beds;
    } else if (!model17.empty()) {
      // Delete a random tenant-17 row.
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(model17.size()) - 1));
      auto n = layout->Execute(17, "DELETE FROM account WHERE aid = ?",
                               {Value::Int64(model17[i].aid)});
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      ASSERT_EQ(*n, 1);
      model17.erase(model17.begin() + static_cast<ptrdiff_t>(i));
    }
  }

  // Full-table comparison for tenant 17.
  auto r17 =
      layout->Query(17, "SELECT aid, name, hospital, beds FROM account "
                        "ORDER BY aid");
  ASSERT_TRUE(r17.ok()) << r17.status().ToString();
  std::sort(model17.begin(), model17.end(),
            [](const ModelRow& a, const ModelRow& b) { return a.aid < b.aid; });
  ASSERT_EQ(r17->rows.size(), model17.size());
  for (size_t i = 0; i < model17.size(); ++i) {
    EXPECT_EQ(r17->rows[i][0].AsInt64(), model17[i].aid);
    EXPECT_EQ(r17->rows[i][1].AsString(), model17[i].name);
    EXPECT_EQ(r17->rows[i][2].AsString(), model17[i].hospital);
    EXPECT_EQ(r17->rows[i][3].AsInt64(), model17[i].beds);
  }

  // Tenant 35 remains isolated and extension-free.
  auto r35 = layout->Query(35, "SELECT aid, name FROM account ORDER BY aid");
  ASSERT_TRUE(r35.ok());
  ASSERT_EQ(r35->rows.size(), model35.size());
  for (size_t i = 0; i < model35.size(); ++i) {
    EXPECT_EQ(r35->rows[i][0].AsInt64(), model35[i].aid);
    EXPECT_EQ(r35->rows[i][1].AsString(), model35[i].name);
  }

  // Predicate queries agree with a model-side filter.
  auto filtered = layout->Query(
      17, "SELECT COUNT(*) FROM account WHERE beds > 1000");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  int64_t expected = static_cast<int64_t>(
      std::count_if(model17.begin(), model17.end(),
                    [](const ModelRow& r) { return r.beds > 1000; }));
  EXPECT_EQ(filtered->rows[0][0].AsInt64(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllExtensibleLayouts, LayoutEquivalenceTest,
    ::testing::Values(LayoutKind::kPrivate, LayoutKind::kExtension,
                      LayoutKind::kUniversal, LayoutKind::kPivot,
                      LayoutKind::kChunk, LayoutKind::kVertical,
                      LayoutKind::kChunkFolding),
    [](const ::testing::TestParamInfo<LayoutKind>& info) {
      return LayoutKindName(info.param);
    });

/// Emission-mode x layout sweep: nested and flattened transformations
/// must agree on every layout.
class EmissionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, EmitMode>> {};

TEST_P(EmissionEquivalenceTest, SameAnswerUnderBothPlanners) {
  auto [kind, emit] = GetParam();
  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(layout.get()).ok());
  layout->transform_options().emit_mode = emit;
  for (PlannerMode mode : {PlannerMode::kNaive, PlannerMode::kAdvanced}) {
    db.set_planner_mode(mode);
    auto r = layout->Query(
        17, "SELECT name FROM account WHERE beds > 500 ORDER BY name");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsString(), "Gump");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmissionEquivalenceTest,
    ::testing::Combine(::testing::Values(LayoutKind::kExtension,
                                         LayoutKind::kUniversal,
                                         LayoutKind::kPivot, LayoutKind::kChunk,
                                         LayoutKind::kChunkFolding),
                       ::testing::Values(EmitMode::kNested,
                                         EmitMode::kFlattened)),
    [](const ::testing::TestParamInfo<std::tuple<LayoutKind, EmitMode>>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == EmitMode::kNested ? "_nested"
                                                           : "_flattened");
    });

}  // namespace
}  // namespace mapping
}  // namespace mtdb
