# Empty compiler generated dependencies file for mtdb_storage.
# This may be replaced when dependencies are built.
