// Static mapping verification sweep: runs the src/analysis verifier —
// layout-invariant audit, tenant-isolation query lint in both §6.1 emit
// modes, and §6.3 two-phase DML probes in both Phase (b) modes — over
// every schema-mapping technique against the CRM testbed schema.
//
// Usage: verify_layouts [layout-name ...]
// With no arguments, sweeps all layouts. Exits nonzero when any layout
// produces an error-severity diagnostic.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/basic_layout.h"
#include "core/chunk_folding_layout.h"
#include "core/chunk_layout.h"
#include "core/extension_layout.h"
#include "core/pivot_layout.h"
#include "core/private_layout.h"
#include "core/universal_layout.h"
#include "testbed/crm_schema.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

const char* const kLayoutNames[] = {"basic",     "private", "extension",
                                    "universal", "pivot",   "chunk",
                                    "vertical",  "chunkfolding"};

std::unique_ptr<SchemaMapping> MakeByName(const std::string& name,
                                          Database* db, const AppSchema* app) {
  if (name == "basic") return std::make_unique<BasicLayout>(db, app);
  if (name == "private") return std::make_unique<PrivateTableLayout>(db, app);
  if (name == "extension") {
    return std::make_unique<ExtensionTableLayout>(db, app);
  }
  if (name == "universal") {
    return std::make_unique<UniversalTableLayout>(db, app);
  }
  if (name == "pivot") return std::make_unique<PivotTableLayout>(db, app);
  if (name == "chunk") {
    ChunkLayoutOptions options;
    options.fold = true;
    return std::make_unique<ChunkTableLayout>(db, app, options);
  }
  if (name == "vertical") {
    ChunkLayoutOptions options;
    options.fold = false;
    return std::make_unique<ChunkTableLayout>(db, app, options);
  }
  if (name == "chunkfolding") return std::make_unique<ChunkFoldingLayout>(db, app);
  return nullptr;
}

/// Verifies one layout; returns the number of error diagnostics, or -1
/// on harness failure.
int VerifyOne(const std::string& name) {
  AppSchema app = testbed::BuildCrmAppSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeByName(name, &db, &app);
  if (layout == nullptr) {
    std::fprintf(stderr, "unknown layout '%s'\n", name.c_str());
    return -1;
  }

  Status st = layout->Bootstrap();
  if (!st.ok()) {
    std::fprintf(stderr, "%s: Bootstrap failed: %s\n", name.c_str(),
                 st.ToString().c_str());
    return -1;
  }
  for (TenantId tenant = 1; tenant <= 3; ++tenant) {
    st = layout->CreateTenant(tenant);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: CreateTenant(%lld) failed: %s\n", name.c_str(),
                   static_cast<long long>(tenant), st.ToString().c_str());
      return -1;
    }
  }
  // Private schemas per tenant: enable a different vertical extension for
  // each tenant (Basic cannot, by design — skip silently there).
  struct {
    TenantId tenant;
    const char* ext;
  } kExtensions[] = {{1, "healthcare_account"},
                     {2, "automotive_account"},
                     {3, "project_opportunity"}};
  for (const auto& e : kExtensions) {
    st = layout->EnableExtension(e.tenant, e.ext);
    if (!st.ok() && name != "basic") {
      std::fprintf(stderr, "%s: EnableExtension(%lld, %s) failed: %s\n",
                   name.c_str(), static_cast<long long>(e.tenant), e.ext,
                   st.ToString().c_str());
      return -1;
    }
  }

  analysis::Verifier verifier(layout.get());
  auto diagnostics = verifier.Run();
  if (!diagnostics.ok()) {
    std::fprintf(stderr, "%s: verifier failed: %s\n", name.c_str(),
                 diagnostics.status().ToString().c_str());
    return -1;
  }
  int errors = 0;
  for (const analysis::Diagnostic& d : *diagnostics) {
    if (d.severity == analysis::Severity::kError) errors++;
    std::printf("%s: %s\n", name.c_str(), d.ToString().c_str());
  }
  std::printf("%-14s %s (%zu diagnostics, %d errors)\n", name.c_str(),
              errors == 0 ? "PASS" : "FAIL", diagnostics->size(), errors);
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) {
    for (const char* name : kLayoutNames) names.emplace_back(name);
  }

  int total_errors = 0;
  bool harness_failed = false;
  for (const std::string& name : names) {
    int errors = VerifyOne(name);
    if (errors < 0) {
      harness_failed = true;
    } else {
      total_errors += errors;
    }
  }
  if (harness_failed) return 2;
  if (total_errors > 0) {
    std::printf("\n%d isolation/layout errors found\n", total_errors);
    return 1;
  }
  std::printf("\nall layouts verified clean\n");
  return 0;
}
