file(REMOVE_RECURSE
  "CMakeFiles/mtdb_bench_common.dir/chunk_bench_common.cc.o"
  "CMakeFiles/mtdb_bench_common.dir/chunk_bench_common.cc.o.d"
  "libmtdb_bench_common.a"
  "libmtdb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
