#include "core/transformer.h"

#include <set>

#include "catalog/schema.h"

namespace mtdb {
namespace mapping {

namespace {

using sql::MakeBinary;
using sql::MakeColumnRef;
using sql::MakeFunc;
using sql::MakeLiteral;
using sql::ParsedExpr;
using sql::ParsedExprPtr;
using sql::PExprKind;
using sql::SelectStmt;
using sql::TableRef;

const char* CastFuncFor(TypeId target) {
  switch (target) {
    case TypeId::kInt32:
      return "cast_int";
    case TypeId::kInt64:
      return "cast_bigint";
    case TypeId::kDouble:
      return "cast_double";
    case TypeId::kDate:
      return "cast_date";
    case TypeId::kBool:
      return "cast_bool";
    default:
      return "cast_str";
  }
}

ParsedExprPtr MaybeCast(ParsedExprPtr e, const ColumnTarget& target) {
  if (!target.NeedsCast()) return e;
  std::vector<ParsedExprPtr> args;
  args.push_back(std::move(e));
  return MakeFunc(CastFuncFor(target.logical_type), std::move(args),
                  /*star=*/false);
}

ParsedExprPtr PartitionConjunct(const std::string& alias,
                                const std::pair<std::string, Value>& p) {
  return MakeBinary(sql::BinaryOp::kEq, MakeColumnRef(alias, p.first),
                    MakeLiteral(p.second));
}

}  // namespace

std::unique_ptr<SelectStmt> BuildReconstruction(
    const TableMapping& mapping, const std::vector<std::string>& columns,
    const std::vector<TypeId>& types, const std::string& row_alias) {
  auto out = std::make_unique<SelectStmt>();
  // Which sources participate.
  std::set<size_t> needed;
  for (const std::string& col : columns) {
    auto it = mapping.columns.find(IdentLower(col));
    if (it != mapping.columns.end()) needed.insert(it->second.source);
  }
  if (needed.empty()) needed.insert(0);

  std::vector<size_t> order(needed.begin(), needed.end());
  std::unordered_map<size_t, std::string> alias_of;
  for (size_t i = 0; i < order.size(); ++i) {
    alias_of[order[i]] = "s" + std::to_string(order[i]);
  }

  // FROM + partition predicates + aligning joins on row.
  ParsedExprPtr where;
  for (size_t i = 0; i < order.size(); ++i) {
    size_t src = order[i];
    TableRef ref;
    ref.table_name = mapping.sources[src].physical_table;
    ref.alias = alias_of[src];
    out->from.push_back(std::move(ref));
    for (const auto& p : mapping.sources[src].partition) {
      where = sql::AndTogether(std::move(where),
                               PartitionConjunct(alias_of[src], p));
    }
    if (i > 0) {
      const std::string& rc0 = mapping.sources[order[0]].row_column;
      const std::string& rci = mapping.sources[src].row_column;
      where = sql::AndTogether(
          std::move(where),
          MakeBinary(sql::BinaryOp::kEq, MakeColumnRef(alias_of[order[0]], rc0),
                     MakeColumnRef(alias_of[src], rci)));
    }
  }
  out->where = std::move(where);

  if (!row_alias.empty() &&
      !mapping.sources[order[0]].row_column.empty()) {
    sql::SelectItem item;
    item.expr =
        MakeColumnRef(alias_of[order[0]], mapping.sources[order[0]].row_column);
    item.alias = row_alias;
    out->items.push_back(std::move(item));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    auto it = mapping.columns.find(IdentLower(columns[i]));
    if (it == mapping.columns.end()) continue;
    const ColumnTarget& t = it->second;
    sql::SelectItem item;
    item.expr = MaybeCast(
        MakeColumnRef(alias_of[t.source], t.physical_column), t);
    item.alias = columns[i];
    out->items.push_back(std::move(item));
    (void)types;
  }
  return out;
}

Result<std::vector<QueryTransformer::LogicalBinding>>
QueryTransformer::BindFrom(TenantId tenant, const SelectStmt& stmt) {
  std::vector<LogicalBinding> bindings;
  for (const TableRef& ref : stmt.from) {
    if (ref.is_subquery()) {
      LogicalBinding b;
      b.binding = ref.binding_name();
      b.mapping = nullptr;  // opaque: transformed recursively
      bindings.push_back(std::move(b));
      continue;
    }
    LogicalBinding b;
    b.binding = ref.binding_name();
    b.table = ref.table_name;
    MTDB_ASSIGN_OR_RETURN(b.columns,
                          resolver_->LogicalColumns(tenant, ref.table_name));
    MTDB_ASSIGN_OR_RETURN(b.mapping, resolver_->Mapping(tenant, ref.table_name));
    b.used.assign(b.columns.size(), false);
    bindings.push_back(std::move(b));
  }
  return bindings;
}

Status QueryTransformer::MarkUses(const ParsedExpr& e,
                                  std::vector<LogicalBinding>* bindings) {
  if (e.kind == PExprKind::kColumnRef) {
    bool matched = false;
    for (LogicalBinding& b : *bindings) {
      if (b.mapping == nullptr) {
        if (!e.table.empty() && IdentEquals(e.table, b.binding)) {
          matched = true;
        }
        continue;
      }
      if (!e.table.empty() && !IdentEquals(e.table, b.binding)) continue;
      for (size_t i = 0; i < b.columns.size(); ++i) {
        if (IdentEquals(b.columns[i].first, e.column)) {
          b.used[i] = true;
          matched = true;
          if (heat_ != nullptr) heat_->Record(b.table, e.column);
        }
      }
    }
    if (!matched) {
      return Status::NotFound("column not found in logical schema: " +
                              (e.table.empty() ? e.column
                                               : e.table + "." + e.column));
    }
    return Status::OK();
  }
  if (e.left != nullptr) MTDB_RETURN_IF_ERROR(MarkUses(*e.left, bindings));
  if (e.right != nullptr) MTDB_RETURN_IF_ERROR(MarkUses(*e.right, bindings));
  for (const auto& a : e.args) MTDB_RETURN_IF_ERROR(MarkUses(*a, bindings));
  return Status::OK();
}

Result<std::unique_ptr<SelectStmt>> QueryTransformer::TransformSelect(
    TenantId tenant, const SelectStmt& input) {
  std::unique_ptr<SelectStmt> stmt = input.Clone();

  // Step 0: recursively transform derived tables first.
  for (TableRef& ref : stmt->from) {
    if (ref.is_subquery()) {
      MTDB_ASSIGN_OR_RETURN(auto sub, TransformSelect(tenant, *ref.subquery));
      ref.subquery = std::move(sub);
    }
  }

  // Step 1: bind the logical FROM list.
  MTDB_ASSIGN_OR_RETURN(std::vector<LogicalBinding> bindings,
                        BindFrom(tenant, *stmt));

  // Expand SELECT * against the logical schema (never expose physical
  // generic-structure columns to the application).
  if (stmt->select_star) {
    stmt->select_star = false;
    for (const LogicalBinding& b : bindings) {
      if (b.mapping == nullptr) {
        return Status::NotImplemented(
            "SELECT * over a derived table in a logical query");
      }
      for (const auto& [name, type] : b.columns) {
        sql::SelectItem item;
        item.expr = MakeColumnRef(b.binding, name);
        item.alias = name;
        stmt->items.push_back(std::move(item));
      }
    }
  }

  // Step 2: collect the used columns per logical table.
  for (const auto& item : stmt->items) {
    MTDB_RETURN_IF_ERROR(MarkUses(*item.expr, &bindings));
  }
  if (stmt->where != nullptr) {
    MTDB_RETURN_IF_ERROR(MarkUses(*stmt->where, &bindings));
  }
  for (const auto& g : stmt->group_by) {
    MTDB_RETURN_IF_ERROR(MarkUses(*g, &bindings));
  }
  if (stmt->having != nullptr) {
    MTDB_RETURN_IF_ERROR(MarkUses(*stmt->having, &bindings));
  }
  for (const auto& o : stmt->order_by) {
    MTDB_RETURN_IF_ERROR(MarkUses(*o.expr, &bindings));
  }

  // Steps 3+4: generate reconstructions and patch them in.
  if (options_.emit_mode == EmitMode::kNested) {
    return EmitNested(tenant, *stmt, bindings);
  }
  return EmitFlattened(tenant, *stmt, bindings);
}

Result<std::unique_ptr<SelectStmt>> QueryTransformer::EmitNested(
    TenantId /*tenant*/, const SelectStmt& stmt,
    std::vector<LogicalBinding>& bindings) {
  std::unique_ptr<SelectStmt> out = stmt.Clone();
  for (size_t i = 0; i < out->from.size(); ++i) {
    LogicalBinding& b = bindings[i];
    if (b.mapping == nullptr) continue;  // already-transformed subquery
    std::vector<std::string> cols;
    std::vector<TypeId> types;
    for (size_t c = 0; c < b.columns.size(); ++c) {
      if (b.used[c]) {
        cols.push_back(b.columns[c].first);
        types.push_back(b.columns[c].second);
      }
    }
    TableRef replacement;
    replacement.subquery =
        BuildReconstruction(*b.mapping, cols, types, /*row_alias=*/"");
    replacement.alias = b.binding;
    out->from[i] = std::move(replacement);
  }
  return out;
}

Result<std::unique_ptr<SelectStmt>> QueryTransformer::EmitFlattened(
    TenantId /*tenant*/, const SelectStmt& stmt,
    std::vector<LogicalBinding>& bindings) {
  std::unique_ptr<SelectStmt> out = stmt.Clone();

  // Per binding: source index -> fresh alias; plus meta-data conjuncts.
  struct Rewrite {
    std::string binding;                          // logical binding (lower)
    std::unordered_map<std::string, size_t> col_to_source;
    std::unordered_map<size_t, std::string> alias_of;
    const TableMapping* mapping;
  };
  std::vector<Rewrite> rewrites;
  std::vector<ParsedExprPtr> meta_conjuncts;
  std::vector<TableRef> new_from;

  for (size_t i = 0; i < out->from.size(); ++i) {
    LogicalBinding& b = bindings[i];
    if (b.mapping == nullptr) {
      new_from.push_back(std::move(out->from[i]));
      continue;
    }
    std::set<size_t> needed;
    for (size_t c = 0; c < b.columns.size(); ++c) {
      if (!b.used[c]) continue;
      auto it = b.mapping->columns.find(IdentLower(b.columns[c].first));
      if (it != b.mapping->columns.end()) needed.insert(it->second.source);
    }
    if (needed.empty()) needed.insert(0);

    Rewrite rw;
    rw.binding = IdentLower(b.binding);
    rw.mapping = b.mapping;
    std::vector<size_t> order(needed.begin(), needed.end());
    for (size_t src : order) {
      std::string alias = b.binding + "$" + std::to_string(fresh_alias_++);
      rw.alias_of[src] = alias;
      TableRef ref;
      ref.table_name = b.mapping->sources[src].physical_table;
      ref.alias = alias;
      new_from.push_back(std::move(ref));
      for (const auto& p : b.mapping->sources[src].partition) {
        meta_conjuncts.push_back(PartitionConjunct(alias, p));
      }
    }
    for (size_t k = 1; k < order.size(); ++k) {
      meta_conjuncts.push_back(MakeBinary(
          sql::BinaryOp::kEq,
          MakeColumnRef(rw.alias_of[order[0]],
                        b.mapping->sources[order[0]].row_column),
          MakeColumnRef(rw.alias_of[order[k]],
                        b.mapping->sources[order[k]].row_column)));
    }
    for (const auto& [name, target] : b.mapping->columns) {
      rw.col_to_source[name] = target.source;
    }
    rewrites.push_back(std::move(rw));
  }
  out->from = std::move(new_from);

  // Rewrite logical column refs into physical alias.column (+ casts).
  std::function<void(ParsedExprPtr*)> rewrite_expr =
      [&](ParsedExprPtr* ep) {
        ParsedExpr* e = ep->get();
        if (e->kind == PExprKind::kColumnRef) {
          std::string t = IdentLower(e->table);
          std::string c = IdentLower(e->column);
          for (Rewrite& rw : rewrites) {
            if (!t.empty() && t != rw.binding) continue;
            auto it = rw.mapping->columns.find(c);
            if (it == rw.mapping->columns.end()) continue;
            const ColumnTarget& target = it->second;
            ParsedExprPtr repl = MaybeCast(
                MakeColumnRef(rw.alias_of.count(target.source)
                                  ? rw.alias_of[target.source]
                                  : rw.alias_of.begin()->second,
                              target.physical_column),
                target);
            *ep = std::move(repl);
            return;
          }
          return;
        }
        if (e->left != nullptr) rewrite_expr(&e->left);
        if (e->right != nullptr) rewrite_expr(&e->right);
        for (auto& a : e->args) rewrite_expr(&a);
      };

  for (auto& item : out->items) rewrite_expr(&item.expr);
  if (out->where != nullptr) rewrite_expr(&out->where);
  for (auto& g : out->group_by) rewrite_expr(&g);
  if (out->having != nullptr) rewrite_expr(&out->having);
  for (auto& o : out->order_by) rewrite_expr(&o.expr);

  // Assemble WHERE in the requested conjunct order.
  ParsedExprPtr original = std::move(out->where);
  ParsedExprPtr meta;
  for (auto& m : meta_conjuncts) {
    meta = sql::AndTogether(std::move(meta), std::move(m));
  }
  if (options_.predicate_order == PredicateOrder::kMetadataFirst) {
    out->where = sql::AndTogether(std::move(meta), std::move(original));
  } else {
    out->where = sql::AndTogether(std::move(original), std::move(meta));
  }
  return out;
}

}  // namespace mapping
}  // namespace mtdb
