#include "exec/executor.h"

#include <algorithm>

#include "common/key_encoding.h"

namespace mtdb {

namespace {

OutputSchema SchemaOfTable(const TableInfo* table) {
  OutputSchema out;
  for (const Column& c : table->schema.columns()) {
    out.names.push_back(c.name);
    out.types.push_back(c.type);
  }
  return out;
}

OutputSchema ConcatSchemas(const OutputSchema& a, const OutputSchema& b) {
  OutputSchema out = a;
  out.names.insert(out.names.end(), b.names.begin(), b.names.end());
  out.types.insert(out.types.end(), b.types.begin(), b.types.end());
  return out;
}

}  // namespace

std::string HashKeyOf(const std::vector<ExprPtr>& exprs, const Row& row,
                      const ExecContext& ctx, Status* status) {
  std::string key;
  for (const ExprPtr& e : exprs) {
    Result<Value> v = e->Eval(row, ctx);
    if (!v.ok()) {
      *status = v.status();
      return key;
    }
    KeyEncoder::Encode(*v, &key);
  }
  *status = Status::OK();
  return key;
}

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(TableInfo* table, ExprPtr predicate)
    : table_(table), predicate_(std::move(predicate)) {
  schema_ = SchemaOfTable(table_);
}

Status SeqScanExecutor::Init(const ExecContext&) {
  it_ = std::make_unique<TableHeap::Iterator>(table_->heap->Begin());
  return Status::OK();
}

Result<bool> SeqScanExecutor::Next(Row* out, const ExecContext& ctx) {
  std::string image;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    MTDB_ASSIGN_OR_RETURN(bool more, it_->Next(&image, &rid_));
    if (!more) break;
    MTDB_ASSIGN_OR_RETURN(
        Row row,
        table_->codec->Decode(image.data(), static_cast<uint32_t>(image.size())));
    if (predicate_ != nullptr) {
      MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, row, ctx));
      if (!keep) continue;
    }
    *out = std::move(row);
    return true;
  }
  return false;
}

// -------------------------------------------------------------- IndexScan

IndexScanExecutor::IndexScanExecutor(TableInfo* table, const IndexInfo* index,
                                     std::vector<ExprPtr> prefix_values,
                                     ExprPtr residual)
    : table_(table),
      index_(index),
      prefix_values_(std::move(prefix_values)),
      residual_(std::move(residual)) {
  schema_ = SchemaOfTable(table_);
}

Status IndexScanExecutor::Init(const ExecContext& ctx) {
  std::vector<Value> prefix;
  for (const ExprPtr& e : prefix_values_) {
    MTDB_ASSIGN_OR_RETURN(Value v, e->Eval(Row{}, ctx));
    prefix.push_back(std::move(v));
  }
  std::string lo, hi;
  KeyEncoder::EncodePrefixRange(prefix, &lo, &hi);
  MTDB_ASSIGN_OR_RETURN(BTree::Iterator it, index_->tree->Scan(lo, hi));
  it_ = std::make_unique<BTree::Iterator>(std::move(it));
  return Status::OK();
}

Result<bool> IndexScanExecutor::Next(Row* out, const ExecContext& ctx) {
  Rid rid;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    MTDB_ASSIGN_OR_RETURN(bool more, it_->Next(&rid));
    if (!more) break;
    std::string image;
    Status st = table_->heap->Get(rid, &image);
    if (st.code() == StatusCode::kNotFound) continue;  // dangling entry
    MTDB_RETURN_IF_ERROR(st);
    MTDB_ASSIGN_OR_RETURN(
        Row row,
        table_->codec->Decode(image.data(), static_cast<uint32_t>(image.size())));
    if (residual_ != nullptr) {
      MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, row, ctx));
      if (!keep) continue;
    }
    rid_ = rid;
    *out = std::move(row);
    return true;
  }
  return false;
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(ExecutorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  schema_ = child_->schema();
}

Status FilterExecutor::Init(const ExecContext& ctx) { return child_->Init(ctx); }

Result<bool> FilterExecutor::Next(Row* out, const ExecContext& ctx) {
  while (true) {
    MTDB_ASSIGN_OR_RETURN(bool more, child_->Next(out, ctx));
    if (!more) return false;
    MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, *out, ctx));
    if (keep) return true;
  }
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(ExecutorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names,
                                 std::vector<TypeId> types)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  schema_.names = std::move(names);
  schema_.types = std::move(types);
}

Status ProjectExecutor::Init(const ExecContext& ctx) {
  return child_->Init(ctx);
}

Result<bool> ProjectExecutor::Next(Row* out, const ExecContext& ctx) {
  Row in;
  MTDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in, ctx));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    MTDB_ASSIGN_OR_RETURN(Value v, e->Eval(in, ctx));
    out->push_back(std::move(v));
  }
  return true;
}

// ----------------------------------------------------------- NestedLoopJoin

NestedLoopJoinExecutor::NestedLoopJoinExecutor(ExecutorPtr left,
                                               ExecutorPtr right,
                                               ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
}

Status NestedLoopJoinExecutor::Init(const ExecContext& ctx) {
  have_left_ = false;
  return left_->Init(ctx);
}

Result<bool> NestedLoopJoinExecutor::Next(Row* out, const ExecContext& ctx) {
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    if (!have_left_) {
      MTDB_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_, ctx));
      if (!more) return false;
      have_left_ = true;
      MTDB_RETURN_IF_ERROR(right_->Init(ctx));
    }
    Row right_row;
    MTDB_ASSIGN_OR_RETURN(bool rmore, right_->Next(&right_row, ctx));
    if (!rmore) {
      have_left_ = false;
      continue;
    }
    Row combined = left_row_;
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    if (predicate_ != nullptr) {
      MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, combined, ctx));
      if (!keep) continue;
    }
    *out = std::move(combined);
    return true;
  }
}

// ------------------------------------------------------ IndexNestedLoopJoin

IndexNestedLoopJoinExecutor::IndexNestedLoopJoinExecutor(
    ExecutorPtr left, TableInfo* right, const IndexInfo* right_index,
    std::vector<ExprPtr> key_exprs, ExprPtr residual)
    : left_(std::move(left)),
      right_(right),
      right_index_(right_index),
      key_exprs_(std::move(key_exprs)),
      residual_(std::move(residual)) {
  schema_ = ConcatSchemas(left_->schema(), SchemaOfTable(right_));
}

Status IndexNestedLoopJoinExecutor::Init(const ExecContext& ctx) {
  have_left_ = false;
  matches_.clear();
  match_pos_ = 0;
  return left_->Init(ctx);
}

Result<bool> IndexNestedLoopJoinExecutor::AdvanceLeft(const ExecContext& ctx) {
  MTDB_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_, ctx));
  if (!more) return false;
  have_left_ = true;
  std::vector<Value> key_vals;
  for (const ExprPtr& e : key_exprs_) {
    MTDB_ASSIGN_OR_RETURN(Value v, e->Eval(left_row_, ctx));
    key_vals.push_back(std::move(v));
  }
  std::string lo, hi;
  KeyEncoder::EncodePrefixRange(key_vals, &lo, &hi);
  matches_.clear();
  match_pos_ = 0;
  MTDB_ASSIGN_OR_RETURN(BTree::Iterator it,
                        right_index_->tree->Scan(lo, hi));
  Rid rid;
  while (true) {
    MTDB_ASSIGN_OR_RETURN(bool has_match, it.Next(&rid));
    if (!has_match) break;
    matches_.push_back(rid);
  }
  return true;
}

Result<bool> IndexNestedLoopJoinExecutor::Next(Row* out,
                                               const ExecContext& ctx) {
  while (true) {
    if (!have_left_ || match_pos_ >= matches_.size()) {
      MTDB_ASSIGN_OR_RETURN(bool more, AdvanceLeft(ctx));
      if (!more) return false;
      continue;
    }
    Rid rid = matches_[match_pos_++];
    std::string image;
    Status st = right_->heap->Get(rid, &image);
    if (st.code() == StatusCode::kNotFound) continue;  // dangling entry
    MTDB_RETURN_IF_ERROR(st);
    MTDB_ASSIGN_OR_RETURN(
        Row right_row,
        right_->codec->Decode(image.data(), static_cast<uint32_t>(image.size())));
    Row combined = left_row_;
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    if (residual_ != nullptr) {
      MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined, ctx));
      if (!keep) continue;
    }
    *out = std::move(combined);
    return true;
  }
}

// --------------------------------------------------------------- HashJoin

HashJoinExecutor::HashJoinExecutor(ExecutorPtr left, ExecutorPtr right,
                                   std::vector<ExprPtr> left_keys,
                                   std::vector<ExprPtr> right_keys,
                                   ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
}

Status HashJoinExecutor::Init(const ExecContext& ctx) {
  table_.clear();
  have_left_ = false;
  MTDB_RETURN_IF_ERROR(right_->Init(ctx));
  Row row;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    Result<bool> more = right_->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    Status st;
    std::string key = HashKeyOf(right_keys_, row, ctx, &st);
    MTDB_RETURN_IF_ERROR(st);
    table_.emplace(std::move(key), row);
  }
  return left_->Init(ctx);
}

Result<bool> HashJoinExecutor::Next(Row* out, const ExecContext& ctx) {
  while (true) {
    if (!have_left_) {
      MTDB_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_, ctx));
      if (!more) return false;
      Status st;
      std::string key = HashKeyOf(left_keys_, left_row_, ctx, &st);
      MTDB_RETURN_IF_ERROR(st);
      range_ = table_.equal_range(key);
      have_left_ = true;
    }
    if (range_.first == range_.second) {
      have_left_ = false;
      continue;
    }
    const Row& right_row = range_.first->second;
    ++range_.first;
    Row combined = left_row_;
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    if (residual_ != nullptr) {
      MTDB_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined, ctx));
      if (!keep) continue;
    }
    *out = std::move(combined);
    return true;
  }
}

// ---------------------------------------------------------------- HashAgg

HashAggExecutor::HashAggExecutor(ExecutorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<AggSpec> aggs,
                                 std::vector<std::string> names,
                                 std::vector<TypeId> types)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_.names = std::move(names);
  schema_.types = std::move(types);
}

Status HashAggExecutor::Init(const ExecContext& ctx) {
  states_.clear();
  emit_pos_ = 0;
  MTDB_RETURN_IF_ERROR(child_->Init(ctx));

  std::unordered_map<std::string, size_t> groups;
  Row row;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    Result<bool> more = child_->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    Status st;
    std::string key = HashKeyOf(group_exprs_, row, ctx, &st);
    MTDB_RETURN_IF_ERROR(st);
    auto [it, inserted] = groups.emplace(key, states_.size());
    if (inserted) {
      AggState state;
      for (const ExprPtr& g : group_exprs_) {
        Result<Value> v = g->Eval(row, ctx);
        if (!v.ok()) return v.status();
        state.group.push_back(*v);
      }
      state.acc.assign(aggs_.size(), Value());
      state.counts.assign(aggs_.size(), 0);
      states_.push_back(std::move(state));
    }
    AggState& state = states_[it->second];
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      if (spec.kind == AggKind::kCountStar) {
        state.counts[i]++;
        continue;
      }
      Result<Value> v = spec.arg->Eval(row, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) continue;
      state.counts[i]++;
      Value& acc = state.acc[i];
      switch (spec.kind) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          if (acc.is_null()) {
            acc = *v;
          } else if (acc.type() == TypeId::kDouble ||
                     v->type() == TypeId::kDouble) {
            acc = Value::Double(acc.AsDouble() + v->AsDouble());
          } else {
            acc = Value::Int64(acc.AsInt64() + v->AsInt64());
          }
          break;
        case AggKind::kMin:
          if (acc.is_null() || v->Compare(acc) < 0) acc = *v;
          break;
        case AggKind::kMax:
          if (acc.is_null() || v->Compare(acc) > 0) acc = *v;
          break;
        case AggKind::kCountStar:
          break;
      }
    }
  }
  // SQL: aggregate over an empty input with no GROUP BY yields one row.
  if (states_.empty() && group_exprs_.empty()) {
    AggState state;
    state.acc.assign(aggs_.size(), Value());
    state.counts.assign(aggs_.size(), 0);
    states_.push_back(std::move(state));
  }
  return Status::OK();
}

Result<bool> HashAggExecutor::Next(Row* out, const ExecContext&) {
  if (emit_pos_ >= states_.size()) return false;
  const AggState& state = states_[emit_pos_++];
  out->clear();
  for (const Value& g : state.group) out->push_back(g);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        out->push_back(Value::Int64(state.counts[i]));
        break;
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
        out->push_back(state.acc[i]);
        break;
      case AggKind::kAvg:
        if (state.counts[i] == 0) {
          out->push_back(Value::Null(TypeId::kDouble));
        } else {
          out->push_back(Value::Double(state.acc[i].AsDouble() /
                                       static_cast<double>(state.counts[i])));
        }
        break;
    }
  }
  return true;
}

// ------------------------------------------------------------------- Sort

SortExecutor::SortExecutor(ExecutorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  schema_ = child_->schema();
}

Status SortExecutor::Init(const ExecContext& ctx) {
  rows_.clear();
  pos_ = 0;
  MTDB_RETURN_IF_ERROR(child_->Init(ctx));
  Row row;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    Result<bool> more = child_->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    rows_.push_back(std::move(row));
  }
  Status sort_status;
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       Result<Value> va = k.expr->Eval(a, ctx);
                       Result<Value> vb = k.expr->Eval(b, ctx);
                       if (!va.ok() || !vb.ok()) {
                         if (sort_status.ok()) {
                           sort_status = va.ok() ? vb.status() : va.status();
                         }
                         return false;
                       }
                       int c = va->Compare(*vb);
                       if (c != 0) return k.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return sort_status;
}

Result<bool> SortExecutor::Next(Row* out, const ExecContext&) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

// ------------------------------------------------------------------ Limit

LimitExecutor::LimitExecutor(ExecutorPtr child, int64_t limit, int64_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {
  schema_ = child_->schema();
}

Status LimitExecutor::Init(const ExecContext& ctx) {
  seen_ = 0;
  emitted_ = 0;
  return child_->Init(ctx);
}

Result<bool> LimitExecutor::Next(Row* out, const ExecContext& ctx) {
  while (true) {
    if (limit_ >= 0 && emitted_ >= limit_) return false;
    MTDB_ASSIGN_OR_RETURN(bool more, child_->Next(out, ctx));
    if (!more) return false;
    if (seen_++ < offset_) continue;
    emitted_++;
    return true;
  }
}

// --------------------------------------------------------------- Distinct

DistinctExecutor::DistinctExecutor(ExecutorPtr child)
    : child_(std::move(child)) {
  schema_ = child_->schema();
}

Status DistinctExecutor::Init(const ExecContext& ctx) {
  seen_.clear();
  return child_->Init(ctx);
}

Result<bool> DistinctExecutor::Next(Row* out, const ExecContext& ctx) {
  while (true) {
    MTDB_ASSIGN_OR_RETURN(bool more, child_->Next(out, ctx));
    if (!more) return false;
    std::string key;
    for (const Value& v : *out) KeyEncoder::Encode(v, &key);
    if (seen_.emplace(std::move(key), true).second) return true;
  }
}

// ----------------------------------------------------------------- Values

ValuesExecutor::ValuesExecutor(std::vector<std::vector<ExprPtr>> rows,
                               std::vector<std::string> names,
                               std::vector<TypeId> types)
    : rows_(std::move(rows)) {
  schema_.names = std::move(names);
  schema_.types = std::move(types);
}

Status ValuesExecutor::Init(const ExecContext&) {
  pos_ = 0;
  return Status::OK();
}

Result<bool> ValuesExecutor::Next(Row* out, const ExecContext& ctx) {
  if (pos_ >= rows_.size()) return false;
  const std::vector<ExprPtr>& exprs = rows_[pos_++];
  out->clear();
  for (const ExprPtr& e : exprs) {
    MTDB_ASSIGN_OR_RETURN(Value v, e->Eval(Row{}, ctx));
    out->push_back(std::move(v));
  }
  return true;
}

// ------------------------------------------------------------ Materialize

MaterializeExecutor::MaterializeExecutor(ExecutorPtr child)
    : child_(std::move(child)) {
  schema_ = child_->schema();
}

Status MaterializeExecutor::Init(const ExecContext& ctx) {
  pos_ = 0;
  if (materialized_) return Status::OK();
  MTDB_RETURN_IF_ERROR(child_->Init(ctx));
  Row row;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    Result<bool> more = child_->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    rows_.push_back(std::move(row));
  }
  materialized_ = true;
  return Status::OK();
}

Result<bool> MaterializeExecutor::Next(Row* out, const ExecContext&) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

}  // namespace mtdb
