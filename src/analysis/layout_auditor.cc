#include "analysis/layout_auditor.h"

#include <map>
#include <set>

#include "catalog/schema.h"

namespace mtdb {
namespace analysis {

namespace {

using mapping::ColumnTarget;
using mapping::PhysicalSource;
using mapping::TableMapping;

std::string Loc(const AuditInput& input) {
  return "tenant " + std::to_string(input.tenant) + ", table " + input.table;
}

std::string SourceLoc(const AuditInput& input, size_t src) {
  std::string out = Loc(input) + ", source " + std::to_string(src);
  if (input.mapping != nullptr && src < input.mapping->sources.size()) {
    out += " (" + input.mapping->sources[src].physical_table + ")";
  }
  return out;
}

void Report(std::vector<Diagnostic>* out, Severity severity,
            const char* rule_id, std::string location, std::string message) {
  out->push_back(Diagnostic{severity, rule_id, std::move(location),
                            std::move(message)});
}

/// Identity of a source for duplicate detection: physical table plus the
/// sorted partition conjuncts.
std::string SourceIdentity(const PhysicalSource& s) {
  std::map<std::string, std::string> parts;
  for (const auto& [col, val] : s.partition) {
    parts[IdentLower(col)] = val.ToString();
  }
  std::string key = IdentLower(s.physical_table);
  for (const auto& [col, val] : parts) key += "|" + col + "=" + val;
  return key;
}

}  // namespace

bool SlotWidthCompatible(TypeId logical, TypeId physical) {
  if (logical == physical) return true;
  switch (physical) {
    case TypeId::kString:
      // The paper's flexible VARCHAR data columns: any value round-trips
      // through its string form (Universal Table, string chunk slots).
      return true;
    case TypeId::kInt64:
      // 64-bit integer slots hold every int-like logical type exactly.
      return logical == TypeId::kBool || logical == TypeId::kInt32 ||
             logical == TypeId::kDate;
    case TypeId::kInt32:
      return logical == TypeId::kBool || logical == TypeId::kDate;
    case TypeId::kDouble:
      // 53-bit mantissa: 32-bit numerics fit exactly, kInt64 does not.
      return logical == TypeId::kBool || logical == TypeId::kInt32;
    case TypeId::kDate:
      return false;
    case TypeId::kBool:
      return false;
    case TypeId::kNull:
      return false;
  }
  return false;
}

void AuditMapping(const AuditInput& input, std::vector<Diagnostic>* out) {
  const TableMapping* m = input.mapping;
  if (m == nullptr || m->sources.empty()) {
    Report(out, Severity::kError, kRuleOrphanSource, Loc(input),
           "mapping has no physical sources");
    return;
  }

  // --- L001: every logical column mapped ------------------------------
  for (const auto& [name, type] : input.logical_columns) {
    (void)type;
    if (m->columns.find(IdentLower(name)) == m->columns.end()) {
      Report(out, Severity::kError, kRuleUnmappedColumn, Loc(input),
             "logical column '" + name +
                 "' has no physical slot (lost during folding)");
    }
  }

  // --- L011 + L002: slot routing is injective -------------------------
  std::map<std::pair<size_t, std::string>, std::vector<std::string>> slots;
  for (const auto& [name, target] : m->columns) {
    if (target.source >= m->sources.size()) {
      Report(out, Severity::kError, kRuleBadSourceIndex, Loc(input),
             "column '" + name + "' routed to source " +
                 std::to_string(target.source) + " of " +
                 std::to_string(m->sources.size()));
      continue;
    }
    slots[{target.source, IdentLower(target.physical_column)}].push_back(name);
  }
  for (const auto& [slot, names] : slots) {
    if (names.size() > 1) {
      std::string joined;
      for (const std::string& n : names) {
        if (!joined.empty()) joined += ", ";
        joined += "'" + n + "'";
      }
      Report(out, Severity::kError, kRuleSlotCollision,
             SourceLoc(input, slot.first),
             "logical columns " + joined + " share physical slot '" +
                 slot.second + "'");
    }
  }

  // --- L003: column_order is a permutation of the mapped columns ------
  {
    std::set<std::string> seen;
    for (const std::string& name : m->column_order) {
      std::string lower = IdentLower(name);
      if (!seen.insert(lower).second) {
        Report(out, Severity::kError, kRuleColumnOrderMismatch, Loc(input),
               "column '" + name + "' appears twice in column_order");
      }
      if (m->columns.find(lower) == m->columns.end()) {
        Report(out, Severity::kError, kRuleColumnOrderMismatch, Loc(input),
               "column_order entry '" + name + "' is not a mapped column");
      }
    }
    for (const auto& [name, target] : m->columns) {
      (void)target;
      if (seen.find(name) == seen.end()) {
        Report(out, Severity::kError, kRuleColumnOrderMismatch, Loc(input),
               "mapped column '" + name + "' missing from column_order");
      }
    }
  }

  // --- L004: slot types width-compatible with the logical types -------
  for (const auto& [name, type] : input.logical_columns) {
    auto it = m->columns.find(IdentLower(name));
    if (it == m->columns.end()) continue;  // L001 already fired
    const ColumnTarget& target = it->second;
    if (target.logical_type != type) {
      Report(out, Severity::kError, kRuleTypeNarrowing, Loc(input),
             "column '" + name + "' declares logical type " +
                 TypeName(target.logical_type) + " but the schema says " +
                 TypeName(type));
    }
    if (!SlotWidthCompatible(type, target.physical_type)) {
      Report(out, Severity::kError, kRuleTypeNarrowing, Loc(input),
             "column '" + name + "' of type " + TypeName(type) +
                 " stored in narrower physical slot of type " +
                 TypeName(target.physical_type));
    }
  }

  // --- per-source rules ------------------------------------------------
  std::set<size_t> routed;
  for (const auto& [name, target] : m->columns) {
    (void)name;
    if (target.source < m->sources.size()) routed.insert(target.source);
  }
  const bool multi_source = m->sources.size() > 1;
  std::map<std::string, size_t> identities;
  for (size_t i = 0; i < m->sources.size(); ++i) {
    const PhysicalSource& source = m->sources[i];

    // L005: orphan chunk — no logical column lives here.
    if (routed.find(i) == routed.end()) {
      Report(out, Severity::kError, kRuleOrphanSource, SourceLoc(input, i),
             "no logical column is routed to this source (orphan chunk)");
    }

    // L012: duplicate partition identity double-counts rows in joins.
    auto [it, inserted] = identities.emplace(SourceIdentity(source), i);
    if (!inserted) {
      Report(out, Severity::kError, kRuleDuplicateSource, SourceLoc(input, i),
             "identical physical table and partition as source " +
                 std::to_string(it->second));
    }

    // L008: row keys must be total once reconstruction joins exist.
    if (multi_source && source.row_column.empty()) {
      Report(out, Severity::kError, kRulePartialRowKey, SourceLoc(input, i),
             "multi-source mapping but this source has no row column; "
             "aligning joins cannot reconstruct rows");
    }

    if (input.catalog == nullptr) continue;

    // L006: the physical table must exist.
    const TableInfo* phys = input.catalog->GetTable(source.physical_table);
    if (phys == nullptr) {
      Report(out, Severity::kError, kRuleDanglingTable, SourceLoc(input, i),
             "physical table '" + source.physical_table +
                 "' does not exist in the catalog");
      continue;
    }

    // L009: a shared physical table (one carrying a tenant meta-data
    // column) must be confined to this tenant by its partition.
    if (phys->schema.Find("tenant").has_value()) {
      bool scoped = false;
      for (const auto& [col, val] : source.partition) {
        if (!IdentEquals(col, "tenant")) continue;
        if (val == Value::Int64(input.tenant)) {
          scoped = true;
        } else {
          Report(out, Severity::kError, kRuleSharedTableUnscoped,
                 SourceLoc(input, i),
                 "tenant partition value " + val.ToString() +
                     " does not match tenant " +
                     std::to_string(input.tenant));
          scoped = true;  // mis-scoped, but not additionally unscoped
        }
      }
      if (!scoped) {
        Report(out, Severity::kError, kRuleSharedTableUnscoped,
               SourceLoc(input, i),
               "shared table '" + source.physical_table +
                   "' has no tenant partition conjunct");
      }
    }

    // L007 + L010: partition columns exist and literals fit them.
    for (const auto& [col, val] : source.partition) {
      auto pos = phys->schema.Find(col);
      if (!pos.has_value()) {
        Report(out, Severity::kError, kRuleMissingPhysicalColumn,
               SourceLoc(input, i),
               "partition column '" + col + "' missing from '" +
                   source.physical_table + "'");
        continue;
      }
      TypeId phys_type = phys->schema.at(*pos).type;
      if (!val.is_null() && !SlotWidthCompatible(val.type(), phys_type)) {
        Report(out, Severity::kError, kRulePartitionTypeMismatch,
               SourceLoc(input, i),
               "partition literal for '" + col + "' has type " +
                   TypeName(val.type()) + ", column is " +
                   TypeName(phys_type));
      }
    }

    // L007: the row column exists.
    if (!source.row_column.empty() &&
        !phys->schema.Find(source.row_column).has_value()) {
      Report(out, Severity::kError, kRuleMissingPhysicalColumn,
             SourceLoc(input, i),
             "row column '" + source.row_column + "' missing from '" +
                 source.physical_table + "'");
    }

    // L007: every routed data column exists with the declared type.
    for (const auto& [name, target] : m->columns) {
      if (target.source != i) continue;
      auto pos = phys->schema.Find(target.physical_column);
      if (!pos.has_value()) {
        Report(out, Severity::kError, kRuleMissingPhysicalColumn,
               SourceLoc(input, i),
               "physical column '" + target.physical_column +
                   "' for logical '" + name + "' missing from '" +
                   source.physical_table + "'");
        continue;
      }
      TypeId actual = phys->schema.at(*pos).type;
      if (actual != target.physical_type) {
        Report(out, Severity::kError, kRuleMissingPhysicalColumn,
               SourceLoc(input, i),
               "physical column '" + target.physical_column +
                   "' declared as " + TypeName(target.physical_type) +
                   " but the catalog says " + TypeName(actual));
      }
    }
  }
}

Result<std::vector<Diagnostic>> AuditLayout(mapping::SchemaMapping* layout) {
  std::vector<Diagnostic> out;
  const mapping::AppSchema* app = layout->app();
  for (TenantId tenant : layout->TenantIds()) {
    for (const mapping::LogicalTable& table : app->tables()) {
      AuditInput input;
      input.tenant = tenant;
      input.table = table.name;
      input.catalog = layout->db()->catalog();

      auto columns = layout->LogicalColumns(tenant, table.name);
      if (!columns.ok()) {
        out.push_back(Diagnostic{Severity::kError, kRuleProbeFailed,
                                 Loc(input),
                                 "LogicalColumns failed: " +
                                     columns.status().ToString()});
        continue;
      }
      input.logical_columns = std::move(columns).value();

      auto mapping = layout->Mapping(tenant, table.name);
      if (!mapping.ok()) {
        out.push_back(Diagnostic{Severity::kError, kRuleProbeFailed,
                                 Loc(input),
                                 "Mapping failed: " +
                                     mapping.status().ToString()});
        continue;
      }
      input.mapping = *mapping;
      AuditMapping(input, &out);
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace mtdb
