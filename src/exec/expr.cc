#include "exec/expr.h"

namespace mtdb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<Value> CompareExpr::Eval(const Row& row, const ExecContext& ctx) const {
  MTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row, ctx));
  MTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  int c = l.Compare(r);
  bool result = false;
  switch (op_) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Bool(result);
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

Result<Value> AndExpr::Eval(const Row& row, const ExecContext& ctx) const {
  // Three-valued logic with short circuit on FALSE.
  MTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row, ctx));
  if (!l.is_null() && !l.AsBool()) return Value::Bool(false);
  MTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row, ctx));
  if (!r.is_null() && !r.AsBool()) return Value::Bool(false);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(true);
}

Result<Value> OrExpr::Eval(const Row& row, const ExecContext& ctx) const {
  MTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row, ctx));
  if (!l.is_null() && l.AsBool()) return Value::Bool(true);
  MTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row, ctx));
  if (!r.is_null() && r.AsBool()) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(false);
}

Result<Value> NotExpr::Eval(const Row& row, const ExecContext& ctx) const {
  MTDB_ASSIGN_OR_RETURN(Value v, child_->Eval(row, ctx));
  if (v.is_null()) return Value::Null(TypeId::kBool);
  return Value::Bool(!v.AsBool());
}

Result<Value> ArithmeticExpr::Eval(const Row& row,
                                   const ExecContext& ctx) const {
  MTDB_ASSIGN_OR_RETURN(Value l, left_->Eval(row, ctx));
  MTDB_ASSIGN_OR_RETURN(Value r, right_->Eval(row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null();
  const bool use_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if (use_double) {
    double a = l.AsDouble(), b = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Double(a + b);
      case ArithOp::kSub:
        return Value::Double(a - b);
      case ArithOp::kMul:
        return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      case ArithOp::kMod:
        return Status::TypeMismatch("MOD on non-integers");
    }
  }
  if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
    if (op_ == ArithOp::kAdd) {
      return Value::String(l.ToString() + r.ToString());
    }
    return Status::TypeMismatch("arithmetic on strings");
  }
  int64_t a = l.AsInt64(), b = r.AsInt64();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Int64(a + b);
    case ArithOp::kSub:
      return Value::Int64(a - b);
    case ArithOp::kMul:
      return Value::Int64(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Int64(a / b);
    case ArithOp::kMod:
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int64(a % b);
  }
  return Status::Internal("unknown arithmetic op");
}

std::string ArithmeticExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
    case ArithOp::kMod:
      op = "%";
      break;
  }
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Eval(const Row& row, const ExecContext& ctx) const {
  MTDB_ASSIGN_OR_RETURN(Value v, value_->Eval(row, ctx));
  MTDB_ASSIGN_OR_RETURN(Value pat, pattern_->Eval(row, ctx));
  if (v.is_null() || pat.is_null()) return Value::Null(TypeId::kBool);
  bool matched = LikeMatch(v.ToString(), pat.ToString());
  return Value::Bool(negated_ ? !matched : matched);
}

Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const ExecContext& ctx) {
  MTDB_ASSIGN_OR_RETURN(Value v, expr.Eval(row, ctx));
  if (v.is_null()) return false;
  return v.AsBool();
}

void SplitConjuncts(const Expr& expr, std::vector<ExprPtr>* out) {
  if (expr.kind() == ExprKind::kAnd) {
    const auto& a = static_cast<const AndExpr&>(expr);
    SplitConjuncts(*a.left(), out);
    SplitConjuncts(*a.right(), out);
    return;
  }
  out->push_back(expr.Clone());
}

ExprPtr JoinConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = std::make_unique<AndExpr>(std::move(acc), std::move(conjuncts[i]));
  }
  return acc;
}

}  // namespace mtdb
