file(REMOVE_RECURSE
  "libmtdb_storage.a"
)
