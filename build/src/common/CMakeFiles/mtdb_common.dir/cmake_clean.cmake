file(REMOVE_RECURSE
  "CMakeFiles/mtdb_common.dir/key_encoding.cc.o"
  "CMakeFiles/mtdb_common.dir/key_encoding.cc.o.d"
  "CMakeFiles/mtdb_common.dir/metrics.cc.o"
  "CMakeFiles/mtdb_common.dir/metrics.cc.o.d"
  "CMakeFiles/mtdb_common.dir/rng.cc.o"
  "CMakeFiles/mtdb_common.dir/rng.cc.o.d"
  "CMakeFiles/mtdb_common.dir/status.cc.o"
  "CMakeFiles/mtdb_common.dir/status.cc.o.d"
  "CMakeFiles/mtdb_common.dir/types.cc.o"
  "CMakeFiles/mtdb_common.dir/types.cc.o.d"
  "CMakeFiles/mtdb_common.dir/value.cc.o"
  "CMakeFiles/mtdb_common.dir/value.cc.o.d"
  "libmtdb_common.a"
  "libmtdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
