#include <gtest/gtest.h>

#include "testbed/crm_schema.h"
#include "testbed/data_generator.h"
#include "testbed/mtd_testbed.h"
#include "testbed/workload.h"

namespace mtdb {
namespace testbed {
namespace {

TEST(CrmSchemaTest, TenTablesTwentyColumns) {
  EXPECT_EQ(CrmTables().size(), 10u);
  for (const CrmTable& t : CrmTables()) {
    Schema s = CrmPhysicalSchema(t);
    EXPECT_EQ(s.size(), 1u + kCrmColumnsPerTable) << t.name;  // + tenant
  }
}

TEST(CrmSchemaTest, ParentsExist) {
  for (const CrmTable& t : CrmTables()) {
    for (const std::string& p : t.parents) {
      bool found = false;
      for (const CrmTable& other : CrmTables()) {
        if (other.name == p) found = true;
      }
      EXPECT_TRUE(found) << t.name << " references missing parent " << p;
    }
  }
}

TEST(CrmSchemaTest, CreateInstanceMakesTenTables) {
  Database db;
  ASSERT_TRUE(CreateCrmInstance(&db, 0).ok());
  EXPECT_EQ(db.Stats().tables, 10u);
  ASSERT_TRUE(CreateCrmInstance(&db, 1).ok());
  EXPECT_EQ(db.Stats().tables, 20u);
}

TEST(CrmSchemaTest, AppSchemaHasExtensions) {
  mapping::AppSchema app = BuildCrmAppSchema();
  EXPECT_EQ(app.tables().size(), 10u);
  EXPECT_GE(app.extensions().size(), 3u);
  EXPECT_NE(app.FindExtension("healthcare_account"), nullptr);
}

TEST(DataGeneratorTest, RowsMatchSchema) {
  DataGenerator gen(1);
  for (const CrmTable& t : CrmTables()) {
    Row row = gen.CrmRow(t, 5, 7, 100);
    EXPECT_EQ(row.size(), CrmPhysicalSchema(t).size()) << t.name;
    EXPECT_EQ(row[0].AsInt32(), 5);
    EXPECT_EQ(row[1].AsInt64(), 7);
  }
}

TEST(DataGeneratorTest, LoadTenantInsertsRows) {
  Database db;
  ASSERT_TRUE(CreateCrmInstance(&db, 0).ok());
  DataGenerator gen(1);
  ASSERT_TRUE(gen.LoadTenant(&db, 0, 3, 5).ok());
  auto r = db.Query("SELECT COUNT(*) FROM account_i0 WHERE tenant = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 5);
}

TEST(ControllerTest, DeckMatchesDistribution) {
  Controller controller(1, 10);
  auto deck = controller.Deal(10000);
  EXPECT_EQ(deck.size(), 10000u);
  std::map<ActionClass, int> counts;
  for (const ActionCard& c : deck) {
    counts[c.action]++;
    EXPECT_GE(c.tenant, 0);
    EXPECT_LT(c.tenant, 10);
  }
  // 50% select-light +- tolerance for rounding/fill.
  EXPECT_NEAR(counts[ActionClass::kSelectLight], 5000, 100);
  EXPECT_NEAR(counts[ActionClass::kUpdateLight], 1760, 50);
  EXPECT_NEAR(counts[ActionClass::kInsertHeavy], 30, 10);
}

TEST(ControllerTest, DeckIsShuffled) {
  Controller controller(1, 10);
  auto deck = controller.Deal(1000);
  // The first 100 cards should not all be the same class.
  std::set<ActionClass> seen;
  for (size_t i = 0; i < 100; ++i) seen.insert(deck[i].action);
  EXPECT_GE(seen.size(), 3u);
}

TEST(ResultDatabaseTest, RecordsPerClass) {
  ResultDatabase results;
  results.Record(ActionClass::kSelectLight, 1.5);
  results.Record(ActionClass::kSelectLight, 2.5);
  results.Record(ActionClass::kSelectHeavy, 10.0);
  EXPECT_EQ(results.TotalActions(), 3u);
  EXPECT_EQ(results.Samples(ActionClass::kSelectLight).count(), 2u);
  EXPECT_DOUBLE_EQ(results.Samples(ActionClass::kSelectHeavy).Mean(), 10.0);
}

TEST(WorkerTest, EveryActionClassSucceeds) {
  Database db;
  ASSERT_TRUE(CreateCrmInstance(&db, 0).ok());
  DataGenerator gen(1);
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(gen.LoadTenant(&db, 0, t, 10).ok());
  }
  Worker worker(&db, 1, 10, 7);
  ResultDatabase results;
  for (ActionClass c :
       {ActionClass::kSelectLight, ActionClass::kSelectHeavy,
        ActionClass::kInsertLight, ActionClass::kInsertHeavy,
        ActionClass::kUpdateLight, ActionClass::kUpdateHeavy,
        ActionClass::kAdministrative}) {
    Status st = worker.RunCard({c, 0}, &results);
    EXPECT_TRUE(st.ok()) << ActionClassName(c) << ": " << st.ToString();
  }
  EXPECT_EQ(results.TotalActions(), 7u);
}

TEST(InstancesForTest, Table1Values) {
  // Table 1 with 10,000 tenants.
  EXPECT_EQ(InstancesFor(0.0, 10000), 1);
  EXPECT_EQ(InstancesFor(0.5, 10000), 5000);
  EXPECT_EQ(InstancesFor(0.65, 10000), 6500);
  EXPECT_EQ(InstancesFor(0.8, 10000), 8000);
  EXPECT_EQ(InstancesFor(1.0, 10000), 10000);
}

TEST(MtdTestbedTest, SmallRunProducesReport) {
  TestbedConfig config;
  config.schema_variability = 0.0;
  config.num_tenants = 4;
  config.rows_per_table_per_tenant = 5;
  config.worker_sessions = 2;
  config.deck_size = 60;
  MtdTestbed testbed(config);
  ASSERT_TRUE(testbed.Setup().ok());
  auto report = testbed.Run(nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_tables, 10);
  EXPECT_GT(report->throughput_per_min, 0.0);
  EXPECT_GT(report->p95_ms.at(ActionClass::kSelectLight), 0.0);
  EXPECT_GT(report->hit_ratio_data, 0.0);
}

TEST(MtdTestbedTest, VariabilityOneCreatesTablesPerTenant) {
  TestbedConfig config;
  config.schema_variability = 1.0;
  config.num_tenants = 4;
  config.rows_per_table_per_tenant = 3;
  config.worker_sessions = 1;
  config.deck_size = 20;
  MtdTestbed testbed(config);
  ASSERT_TRUE(testbed.Setup().ok());
  auto report = testbed.Run(nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_tables, 40);  // 4 tenants x 10 tables
}

}  // namespace
}  // namespace testbed
}  // namespace mtdb
