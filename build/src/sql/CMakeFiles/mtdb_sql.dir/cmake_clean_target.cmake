file(REMOVE_RECURSE
  "libmtdb_sql.a"
)
