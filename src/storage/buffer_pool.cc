#include "storage/buffer_pool.h"

#include <cassert>

namespace mtdb {

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {}

void BufferPool::Touch(Frame* frame, PageId id) {
  if (frame->in_lru) {
    lru_.erase(frame->lru_it);
  }
  lru_.push_front(id);
  frame->lru_it = lru_.begin();
  frame->in_lru = true;
}

Page* BufferPool::FetchPage(PageId id) {
  PageType type = store_->TypeOf(id);
  if (type == PageType::kIndex) {
    stats_.logical_reads_index++;
  } else {
    stats_.logical_reads_data++;
  }
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame* frame = it->second.get();
    frame->pin_count++;
    Touch(frame, id);
    return &frame->page;
  }
  // Miss: read through.
  if (type == PageType::kIndex) {
    stats_.misses_index++;
  } else {
    stats_.misses_data++;
  }
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  store_->Read(id, frame->page.data());
  frame->pin_count = 1;
  Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  Touch(raw, id);
  EvictIfNeeded();
  return &raw->page;
}

Page* BufferPool::NewPage(PageType type) {
  PageId id = store_->Allocate(type);
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  frame->pin_count = 1;
  frame->dirty = true;
  Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  Touch(raw, id);
  EvictIfNeeded();
  return &raw->page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame* frame = it->second.get();
  assert(frame->pin_count > 0);
  frame->pin_count--;
  if (dirty) frame->dirty = true;
  if (frame->pin_count == 0 && frames_.size() > capacity_) {
    EvictIfNeeded();
  }
}

void BufferPool::DeletePage(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame* frame = it->second.get();
    assert(frame->pin_count == 0);
    if (frame->in_lru) lru_.erase(frame->lru_it);
    frames_.erase(it);
  }
  store_->Deallocate(id);
}

void BufferPool::FlushFrame(Frame* frame) {
  if (frame->dirty) {
    store_->Write(frame->page.id(), frame->page.data());
    frame->dirty = false;
  }
}

void BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    FlushFrame(frame.get());
  }
}

void BufferPool::EvictAll() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame* frame = it->second.get();
    if (frame->pin_count == 0) {
      FlushFrame(frame);
      if (frame->in_lru) lru_.erase(frame->lru_it);
      it = frames_.erase(it);
      stats_.evictions++;
    } else {
      ++it;
    }
  }
}

void BufferPool::SetCapacity(size_t frames) {
  capacity_ = frames == 0 ? 1 : frames;
  EvictIfNeeded();
}

void BufferPool::EvictIfNeeded() {
  while (frames_.size() > capacity_ && !lru_.empty()) {
    // Scan from LRU end for an unpinned victim.
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      PageId victim = *it;
      auto fit = frames_.find(victim);
      assert(fit != frames_.end());
      Frame* frame = fit->second.get();
      if (frame->pin_count == 0) {
        FlushFrame(frame);
        lru_.erase(std::next(it).base());
        frames_.erase(fit);
        stats_.evictions++;
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything pinned: allow temporary overshoot
  }
}

}  // namespace mtdb
