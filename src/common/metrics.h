#ifndef MTDB_COMMON_METRICS_H_
#define MTDB_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtdb {

/// Point-in-time copy of IoFaultCounters, safe to pass around.
struct IoFaultCountersSnapshot {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t checksum_failures = 0;
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t retry_exhaustions = 0;
  uint64_t latency_spikes = 0;
};

/// Storage-tier fault and retry counters. One instance lives in the
/// BufferPool and is bumped with relaxed atomics on the I/O path; tests
/// and the chaos harness read a Snapshot() to assert that retries
/// actually happened (or that none did with injection disabled).
class IoFaultCounters {
 public:
  void OnReadFault() { read_faults_.fetch_add(1, std::memory_order_relaxed); }
  void OnWriteFault() { write_faults_.fetch_add(1, std::memory_order_relaxed); }
  void OnChecksumFailure() {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReadRetry() { read_retries_.fetch_add(1, std::memory_order_relaxed); }
  void OnWriteRetry() {
    write_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnRetryExhausted() {
    retry_exhaustions_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnLatencySpike() {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  }

  IoFaultCountersSnapshot Snapshot() const {
    IoFaultCountersSnapshot s;
    s.read_faults = read_faults_.load(std::memory_order_relaxed);
    s.write_faults = write_faults_.load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
    s.read_retries = read_retries_.load(std::memory_order_relaxed);
    s.write_retries = write_retries_.load(std::memory_order_relaxed);
    s.retry_exhaustions = retry_exhaustions_.load(std::memory_order_relaxed);
    s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_faults_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> read_retries_{0};
  std::atomic<uint64_t> write_retries_{0};
  std::atomic<uint64_t> retry_exhaustions_{0};
  std::atomic<uint64_t> latency_spikes_{0};
};

/// Point-in-time copy of DurabilityCounters, safe to pass around.
struct DurabilityCountersSnapshot {
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t group_commits = 0;
  uint64_t checkpoints = 0;
  uint64_t recoveries = 0;
  uint64_t replayed_groups = 0;
  uint64_t truncated_tails = 0;
  uint64_t txn_begins = 0;
  uint64_t txn_ends = 0;
  uint64_t recovery_undo_statements = 0;
  uint64_t injected_crashes = 0;
};

/// Durability-tier counters. One instance lives in the Durability
/// manager; bumped with relaxed atomics on the log/checkpoint path so
/// recovery tests can assert the run exercised what it claims (appends
/// happened, tails were truncated, undo actually ran).
class DurabilityCounters {
 public:
  void OnWalAppend(uint64_t bytes) {
    wal_appends_.fetch_add(1, std::memory_order_relaxed);
    wal_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void OnGroupCommit() {
    group_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCheckpoint() { checkpoints_.fetch_add(1, std::memory_order_relaxed); }
  void OnRecovery() { recoveries_.fetch_add(1, std::memory_order_relaxed); }
  void OnReplayedGroup() {
    replayed_groups_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnTruncatedTail() {
    truncated_tails_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnTxnBegin() { txn_begins_.fetch_add(1, std::memory_order_relaxed); }
  void OnTxnEnd() { txn_ends_.fetch_add(1, std::memory_order_relaxed); }
  void OnRecoveryUndoStatement() {
    recovery_undo_statements_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnInjectedCrash() {
    injected_crashes_.fetch_add(1, std::memory_order_relaxed);
  }

  DurabilityCountersSnapshot Snapshot() const {
    DurabilityCountersSnapshot s;
    s.wal_appends = wal_appends_.load(std::memory_order_relaxed);
    s.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
    s.group_commits = group_commits_.load(std::memory_order_relaxed);
    s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    s.recoveries = recoveries_.load(std::memory_order_relaxed);
    s.replayed_groups = replayed_groups_.load(std::memory_order_relaxed);
    s.truncated_tails = truncated_tails_.load(std::memory_order_relaxed);
    s.txn_begins = txn_begins_.load(std::memory_order_relaxed);
    s.txn_ends = txn_ends_.load(std::memory_order_relaxed);
    s.recovery_undo_statements =
        recovery_undo_statements_.load(std::memory_order_relaxed);
    s.injected_crashes = injected_crashes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> group_commits_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<uint64_t> replayed_groups_{0};
  std::atomic<uint64_t> truncated_tails_{0};
  std::atomic<uint64_t> txn_begins_{0};
  std::atomic<uint64_t> txn_ends_{0};
  std::atomic<uint64_t> recovery_undo_statements_{0};
  std::atomic<uint64_t> injected_crashes_{0};
};

/// Accumulates response-time (or other scalar) samples and reports
/// order statistics. Used by the MTD testbed for the 95% quantiles and
/// baseline-compliance metrics of Table 2.
///
/// Thread-safety contract: a SampleSet is NOT thread-safe — not even
/// for concurrent Add() calls, and the accessors sort lazily through
/// `mutable` state, so even concurrent *reads* race. The intended
/// multi-threaded pattern is one SampleSet per worker thread, with the
/// driver calling Merge() on the partial sets strictly after joining
/// the workers (see testbed::ResultDatabase). This keeps the recording
/// hot path free of any synchronization.
class SampleSet {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// q in [0,1]; nearest-rank quantile. Returns 0 on an empty set.
  double Quantile(double q) const;
  double Min() const;
  double Max() const;
  /// Fraction of samples <= threshold (the "baseline compliance" test).
  double FractionBelow(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void EnsureSorted() const;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_METRICS_H_
