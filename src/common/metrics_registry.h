#ifndef MTDB_COMMON_METRICS_REGISTRY_H_
#define MTDB_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"

namespace mtdb {

/// A relaxed-atomic monotonic counter: the one sanctioned counter
/// primitive of the engine. Every concurrently-bumped statistic — named
/// registry series, LayoutStats fields, per-tenant fault tallies — uses
/// this type; CI rejects raw `std::atomic` counter members outside
/// src/common/ so the hot-path memory ordering stays in one place.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  Counter& operator++() {
    Add(1);
    return *this;
  }
  void operator++(int) { Add(1); }
  Counter& operator+=(uint64_t delta) {
    Add(delta);
    return *this;
  }

  /// Adds one and returns the new value (threshold checks).
  uint64_t IncrementAndGet() {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Atomic-compatible spelling kept so call sites read like the
  /// std::atomic fields this type replaced.
  uint64_t load() const { return value(); }
  operator uint64_t() const { return value(); }

  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Fixed-bucket latency histogram (microseconds). Bucket bounds are a
/// 1-2-5 exponential ladder shared by every histogram in the registry so
/// snapshots merge and render uniformly; Record() is a relaxed atomic
/// bump of one bucket plus count/sum — safe from any thread.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 19;  // +1 overflow bucket
  /// Upper bounds (inclusive) in microseconds; values beyond the last
  /// bound land in the overflow bucket.
  static const std::array<uint64_t, kBuckets>& BucketBoundsUs();

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// Point-in-time copy of everything the registry knows, safe to pass
/// around, diff, or render. Counter entries cover both owned counters
/// and registered gauge callbacks (evaluated at snapshot time).
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<uint64_t> bounds_us;  // kBuckets bounds; last bucket = overflow
    std::vector<uint64_t> buckets;    // bounds_us.size() + 1 counts
    uint64_t count = 0;
    uint64_t sum_us = 0;
  };

  std::vector<CounterEntry> counters;      // sorted by name
  std::vector<HistogramEntry> histograms;  // sorted by name
  /// Series requests refused because the registry hit its cardinality cap.
  uint64_t dropped_series = 0;

  /// Finds a counter value by exact name; 0 when absent.
  uint64_t CounterValue(const std::string& name) const;
  const HistogramEntry* FindHistogram(const std::string& name) const;

  /// Renders the snapshot as a stable, pretty-printed JSON object
  /// (counters, histograms, dropped_series) — the `mtdb_stats` format.
  std::string ToJson() const;
};

/// The engine-wide metrics registry: named Counters and LatencyHistograms
/// created on first use, plus gauge callbacks that adapt pre-existing
/// counter structs (IoFaultCounters, DurabilityCounters, BufferPoolStats)
/// into the same namespace at snapshot time.
///
/// Hot path: GetCounter/GetHistogram take a small latch ONCE per series —
/// callers cache the returned pointer (stable for the registry's
/// lifetime; the maps are node-based) and afterwards bump it with a
/// single relaxed atomic add.
///
/// Cardinality is bounded: at most `max_series` distinct counters and
/// histograms (combined). Past the cap, lookups of NEW names return a
/// shared overflow series and `dropped_series` counts the refusals, so a
/// tenant-id explosion degrades a snapshot instead of memory.
class MetricsRegistry {
 public:
  static constexpr size_t kDefaultMaxSeries = 4096;

  explicit MetricsRegistry(size_t max_series = kDefaultMaxSeries);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use. Never
  /// nullptr; at the cardinality cap the shared overflow counter comes
  /// back instead.
  Counter* GetCounter(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use.
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Registers a read-only gauge evaluated at Snapshot() time (how the
  /// I/O-fault and durability counter structs join the registry without
  /// moving). The callback must stay valid for the registry's lifetime
  /// and must not call back into the registry.
  void RegisterGauge(std::string name, std::function<uint64_t()> fn);

  /// Point-in-time snapshot. Gauges are evaluated outside the registry
  /// latch, so their callbacks may take component latches freely.
  MetricsSnapshot Snapshot() const;

  size_t max_series() const { return max_series_; }
  uint64_t dropped_series() const { return dropped_series_.value(); }

 private:
  const size_t max_series_;
  /// Leaf latch: held only for map lookups/inserts, never while calling
  /// out, so it can be taken from any statement context.
  mutable Latch mu_{LatchRank::kMetricsRegistry, "metrics-registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> gauges_;
  Counter overflow_counter_;
  LatencyHistogram overflow_histogram_;
  Counter dropped_series_;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_METRICS_REGISTRY_H_
