file(REMOVE_RECURSE
  "CMakeFiles/layout_equivalence_test.dir/layout_equivalence_test.cc.o"
  "CMakeFiles/layout_equivalence_test.dir/layout_equivalence_test.cc.o.d"
  "layout_equivalence_test"
  "layout_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
