// Lock-manager benchmark (DESIGN.md §15): a writer-count sweep over
// hot-row sets of different sizes, plus the uncontended-overhead gate.
//
// Sweep: 1, 2, 4 and 8 writer sessions of ONE tenant hammer single-row
// autocommit UPDATEs whose target row is drawn from a hot set of 1, 16
// or 256 distinct rows (extension layout, so locks are per logical
// row). A hot set of 1 serializes every writer on one lock — the
// convoy regime; 256 spreads them out. The lock.waits / lock.deadlocks
// deltas per point make the contention visible alongside throughput.
//
// Gate: with one writer on the wide hot set (no contention anywhere),
// the same workload runs with row locks ON and OFF
// (DatabaseOptions::row_locks); the fast-path cost — one holder probe
// and one map insert per written row — must stay within 2% of the
// unlocked engine. The gate statistic is the median over PAIRED ~1 ms
// batches on one long-lived thread: each ON batch is compared only
// against its adjacent OFF batch, so machine drift and descheduling
// bursts become discarded outlier pairs instead of skew.
// MTDB_BENCH_LOCK_GATE_PCT / _OPS override. Emits BENCH_locks.json;
// exits 1 when the gate fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "core/extension_layout.h"
#include "core/tenant_session.h"
#include "engine/database.h"

namespace mtdb {
namespace bench {
namespace {

using mapping::AppSchema;
using mapping::ExtensionTableLayout;
using mapping::LogicalTable;
using mapping::TenantSession;

struct BenchConfig {
  int64_t rows = 512;
  /// Statements per sweep point, split across the writers.
  int total_ops = 1600;
  /// Total gate statements per arm, run as interleaved 100-statement
  /// batches so machine drift hits both sample pools equally.
  int gate_ops = 16000;
  double gate_pct = 2.0;
  uint64_t seed = 42;
};

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return fallback;
}

AppSchema BenchSchema() {
  AppSchema app;
  LogicalTable t;
  t.name = "account";
  t.columns = {{"aid", TypeId::kInt64, true},
               {"name", TypeId::kString, false}};
  Status st = app.AddTable(std::move(t));
  (void)st;
  return app;
}

struct Fixture {
  std::unique_ptr<Database> db;
  /// Heap-allocated: the layout keeps a pointer to the schema, and the
  /// fixture is moved around by value.
  std::unique_ptr<AppSchema> app;
  std::unique_ptr<ExtensionTableLayout> layout;
};

Result<Fixture> MakeFixture(bool row_locks, const BenchConfig& config) {
  Fixture fx;
  DatabaseOptions options;  // in-memory
  options.row_locks = row_locks;
  fx.db = std::make_unique<Database>(std::move(options));
  fx.app = std::make_unique<AppSchema>(BenchSchema());
  fx.layout =
      std::make_unique<ExtensionTableLayout>(fx.db.get(), fx.app.get());
  MTDB_RETURN_IF_ERROR(fx.layout->Bootstrap());
  MTDB_RETURN_IF_ERROR(fx.layout->CreateTenant(1));
  Rng rng(config.seed);
  TenantSession session = fx.layout->OpenSession(1);
  for (int64_t i = 0; i < config.rows; ++i) {
    MTDB_RETURN_IF_ERROR(
        session
            .InsertRow("account",
                       {Value::Int64(i), Value::String(rng.Word(8, 16))})
            .status());
  }
  return fx;
}

struct RunResult {
  int writers = 0;
  int64_t hot_rows = 0;
  double elapsed_s = 0;
  uint64_t actions = 0;
  double throughput_per_s = 0;
  double p95_update_ms = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_deadlocks = 0;
};

/// One measured run: `writers` sessions fire single-row UPDATEs drawn
/// from `hot_rows` distinct rows until `ops` statements have executed.
/// When `collect` is non-null the per-statement latency samples are
/// merged into it (the gate pools samples across interleaved slices).
Result<RunResult> RunPoint(Fixture* fx, int writers, int64_t hot_rows,
                           int ops, const BenchConfig& config,
                           SampleSet* collect = nullptr) {
  MetricsRegistry* metrics = fx->db->metrics_registry();
  const uint64_t waits_before = metrics->GetCounter("lock.waits.t1")->value();
  const uint64_t deadlocks_before =
      metrics->GetCounter("lock.deadlocks.t1")->value();

  int per_worker = ops / writers;
  std::atomic<int> errors{0};
  std::vector<Status> first_error(writers, Status::OK());
  std::vector<SampleSet> partials(writers);
  std::vector<std::thread> threads;
  threads.reserve(writers);
  auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w]() {
      Rng rng(config.seed + 1000 + static_cast<uint64_t>(w));
      TenantSession session = fx->layout->OpenSession(1);
      for (int i = 0; i < per_worker; ++i) {
        int64_t row = rng.Uniform(0, hot_rows - 1);
        auto t0 = std::chrono::steady_clock::now();
        auto st = session.Execute(
            "UPDATE account SET name = ? WHERE aid = ?",
            {Value::String("w" + std::to_string(w)), Value::Int64(row)});
        auto t1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          if (errors.fetch_add(1) == 0) first_error[w] = st.status();
          continue;
        }
        partials[w].Add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto end = std::chrono::steady_clock::now();
  if (errors.load() > 0) {
    std::string detail;
    for (const Status& st : first_error) {
      if (!st.ok()) {
        detail = " (first: " + st.ToString() + ")";
        break;
      }
    }
    return Status::Internal(std::to_string(errors.load()) +
                            " bench actions failed" + detail);
  }

  SampleSet updates;
  for (const SampleSet& s : partials) updates.Merge(s);
  if (collect != nullptr) collect->Merge(updates);
  RunResult result;
  result.writers = writers;
  result.hot_rows = hot_rows;
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  result.actions = updates.count();
  result.throughput_per_s =
      static_cast<double>(result.actions) / result.elapsed_s;
  result.p95_update_ms = updates.Quantile(0.95);
  result.lock_waits =
      metrics->GetCounter("lock.waits.t1")->value() - waits_before;
  result.lock_deadlocks =
      metrics->GetCounter("lock.deadlocks.t1")->value() - deadlocks_before;
  return result;
}

int Main() {
  BenchConfig config;
  config.rows = EnvInt("MTDB_BENCH_ROWS", static_cast<int>(config.rows));
  config.total_ops = EnvInt("MTDB_BENCH_OPS", config.total_ops);
  config.gate_ops = EnvInt("MTDB_BENCH_LOCK_GATE_OPS", config.gate_ops);
  config.gate_pct = EnvInt("MTDB_BENCH_LOCK_GATE_PCT",
                           static_cast<int>(config.gate_pct));

  // --- contention sweep (row locks on) ------------------------------
  const int kWriterCounts[] = {1, 2, 4, 8};
  const int64_t kHotRows[] = {1, 16, 256};
  std::printf("# lock sweep: %lld rows, %d ops/point, extension layout\n",
              static_cast<long long>(config.rows), config.total_ops);
  std::printf("%8s %9s %12s %14s %12s %10s %10s\n", "writers", "hot rows",
              "elapsed[s]", "thruput[1/s]", "p95 upd[ms]", "waits",
              "deadlocks");
  std::vector<RunResult> results;
  auto fixture = MakeFixture(/*row_locks=*/true, config);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  for (int64_t hot : kHotRows) {
    for (int writers : kWriterCounts) {
      auto r = RunPoint(&*fixture, writers, hot, config.total_ops, config);
      if (!r.ok()) {
        std::fprintf(stderr, "sweep point %dx%lld failed: %s\n", writers,
                     static_cast<long long>(hot),
                     r.status().ToString().c_str());
        return 1;
      }
      results.push_back(*r);
      std::printf("%8d %9lld %12.3f %14.1f %12.3f %10llu %10llu\n",
                  r->writers, static_cast<long long>(r->hot_rows),
                  r->elapsed_s, r->throughput_per_s, r->p95_update_ms,
                  static_cast<unsigned long long>(r->lock_waits),
                  static_cast<unsigned long long>(r->lock_deadlocks));
    }
  }

  // --- raw fast-path microloop --------------------------------------
  // The lock cycle one autocommit UPDATE pays, isolated from the rest
  // of the statement: holder create + IX table + X row + release.
  {
    lock::LockManager* lm = fixture->db->lock_manager();
    const std::string table = "account";
    const int kCycles = 200000;
    Rng rng(config.seed + 7);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCycles; ++i) {
      uint64_t h = lm->CreateHolder(1, false);
      (void)lm->Acquire(h, {1, table, lock::kTableRowId},
                        lock::LockMode::kIntentX);
      (void)lm->Acquire(h, {1, table, rng.Uniform(0, config.rows - 1)},
                        lock::LockMode::kX);
      lm->ReleaseAll(h);
    }
    auto t1 = std::chrono::steady_clock::now();
    std::printf("# raw lock cycle: %.0f ns/statement\n",
                std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    kCycles);
  }

  // --- uncontended overhead gate ------------------------------------
  // One writer over the full row set: every acquisition takes the
  // fast path. Compare against the same engine with the lock manager
  // compiled out of the statement path (row_locks = false).
  //
  // Measurement design: the throughput of a 0.25 s window on a shared
  // machine swings by ±10%, so the gate works on per-statement medians
  // instead — a descheduled statement lands in the tail and leaves a
  // batch median untouched.
  auto fx_on = MakeFixture(/*row_locks=*/true, config);
  auto fx_off = MakeFixture(/*row_locks=*/false, config);
  if (!fx_on.ok() || !fx_off.ok()) {
    std::fprintf(stderr, "gate fixture failed: %s\n",
                 (!fx_on.ok() ? fx_on.status() : fx_off.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  // One long-lived thread, one session per arm, alternating ~1 ms
  // batches: no per-batch thread spawn, warm thread caches for both
  // arms. The gate statistic is PAIRED — each ON batch is compared
  // only against its temporally adjacent OFF batch (median latency of
  // each, ratio per pair, median ratio overall), so a noise burst that
  // lands on one pair becomes a discarded outlier instead of skewing a
  // pooled median. The within-pair order flips every pair to cancel
  // linear drift.
  SampleSet gate_on, gate_off;
  std::vector<double> pair_ratios;
  {
    TenantSession session_on = fx_on->layout->OpenSession(1);
    TenantSession session_off = fx_off->layout->OpenSession(1);
    Rng rng(config.seed + 99);
    const int kBatch = 50;
    const int pairs = std::max(1, config.gate_ops / kBatch);
    pair_ratios.reserve(pairs);
    Status gate_error = Status::OK();
    // Pair -1 is unrecorded warmup.
    for (int b = -1; b < pairs && gate_error.ok(); ++b) {
      double batch_med[2] = {0, 0};  // [0]=off, [1]=on
      for (int half = 0; half < 2; ++half) {
        const bool on = (half == 0) == (b % 2 == 0);
        TenantSession& session = on ? session_on : session_off;
        SampleSet batch;
        for (int i = 0; i < kBatch; ++i) {
          int64_t row = rng.Uniform(0, config.rows - 1);
          auto t0 = std::chrono::steady_clock::now();
          auto st = session.Execute(
              "UPDATE account SET name = ? WHERE aid = ?",
              {Value::String("g"), Value::Int64(row)});
          auto t1 = std::chrono::steady_clock::now();
          if (!st.ok()) {
            gate_error = st.status();
            break;
          }
          batch.Add(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        if (b < 0 || !gate_error.ok()) continue;
        batch_med[on ? 1 : 0] = batch.Quantile(0.5);
        (on ? gate_on : gate_off).Merge(batch);
      }
      if (b >= 0 && gate_error.ok()) {
        pair_ratios.push_back(batch_med[1] / batch_med[0]);
      }
    }
    if (!gate_error.ok()) {
      std::fprintf(stderr, "gate statement failed: %s\n",
                   gate_error.ToString().c_str());
      return 1;
    }
  }
  const double med_on_ms = gate_on.Quantile(0.5);
  const double med_off_ms = gate_off.Quantile(0.5);
  const double best_on = 1000.0 / med_on_ms;   // statements/s at the median
  const double best_off = 1000.0 / med_off_ms;
  std::sort(pair_ratios.begin(), pair_ratios.end());
  const double med_ratio = pair_ratios[pair_ratios.size() / 2];
  const double overhead_pct = 100.0 * (med_ratio - 1.0);
  std::printf(
      "# uncontended gate: median %.1f us/stmt with locks, %.1f without "
      "(%zu paired batches, median-pair overhead %.2f%%, limit %.1f%%)\n",
      med_on_ms * 1000.0, med_off_ms * 1000.0, pair_ratios.size(),
      overhead_pct, config.gate_pct);

  const char* out_path = std::getenv("MTDB_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_locks.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"locks\",\n");
  std::fprintf(f,
               "  \"config\": {\"rows\": %lld, \"total_ops\": %d, "
               "\"gate_ops\": %d, \"layout\": \"extension\"},\n",
               static_cast<long long>(config.rows), config.total_ops,
               config.gate_ops);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        f,
        "    {\"writers\": %d, \"hot_rows\": %lld, \"elapsed_s\": %.4f, "
        "\"actions\": %llu, \"throughput_per_s\": %.2f, "
        "\"p95_update_ms\": %.3f, \"lock_waits\": %llu, "
        "\"lock_deadlocks\": %llu}%s\n",
        r.writers, static_cast<long long>(r.hot_rows), r.elapsed_s,
        static_cast<unsigned long long>(r.actions), r.throughput_per_s,
        r.p95_update_ms, static_cast<unsigned long long>(r.lock_waits),
        static_cast<unsigned long long>(r.lock_deadlocks),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gate\": {\"median_us_locks_on\": %.3f, "
               "\"median_us_locks_off\": %.3f, "
               "\"throughput_locks_on\": %.2f, "
               "\"throughput_locks_off\": %.2f, \"overhead_pct\": %.3f, "
               "\"limit_pct\": %.1f}\n}\n",
               med_on_ms * 1000.0, med_off_ms * 1000.0, best_on, best_off,
               overhead_pct, config.gate_pct);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path);

  // The acceptance gate: the uncontended fast path must be ~free.
  if (overhead_pct > config.gate_pct) {
    std::fprintf(stderr,
                 "FAIL: uncontended lock overhead %.2f%% exceeds the "
                 "%.1f%% ceiling\n",
                 overhead_pct, config.gate_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
