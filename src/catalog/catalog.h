#ifndef MTDB_CATALOG_CATALOG_H_
#define MTDB_CATALOG_CATALOG_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/latch.h"
#include "common/result.h"
#include "index/btree.h"
#include "storage/row_codec.h"
#include "storage/table_heap.h"

namespace mtdb {

/// Per-object meta-data charges against the engine memory budget,
/// mirroring "IBM DB2 V9.1 allocates 4 KB of memory for each table, so
/// 100,000 tables consume 400 MB of memory up front" (§1.1).
struct MetadataCosts {
  uint64_t bytes_per_table = 4096;
  uint64_t bytes_per_column = 64;
  uint64_t bytes_per_index = 1024;
};

/// A secondary (or primary) index definition plus its B+Tree.
struct IndexInfo {
  IndexId id = -1;
  std::string name;
  std::vector<size_t> key_columns;  // positions in the table schema
  bool unique = false;
  std::unique_ptr<BTree> tree;
};

/// A physical table: schema + heap + indexes + row codec.
struct TableInfo {
  TableId id = -1;
  std::string name;
  Schema schema;
  std::unique_ptr<RowCodec> codec;
  std::unique_ptr<TableHeap> heap;
  std::vector<std::unique_ptr<IndexInfo>> indexes;

  /// Finds an index whose key columns start with exactly `cols` (used by
  /// the planner for index selection).
  const IndexInfo* FindIndexOnPrefix(const std::vector<size_t>& cols) const;
};

/// The system catalog. Creating/dropping tables and indexes charges/
/// releases meta-data bytes against the shared memory budget and resizes
/// the buffer pool accordingly — the mechanism behind §5's scalability
/// limit ("the fundamental limitation ... is the number of tables the
/// database can handle, which is itself dependent on the amount of
/// available memory").
///
/// Thread-safety: lookups take an internal shared_mutex in shared mode,
/// so concurrent sessions resolve tables without contending; mutators
/// (CreateTable/DropTable/CreateIndex/DropIndex) take it exclusively.
/// The returned TableInfo* stays valid only while no DDL drops it — the
/// engine guarantees that by excluding DDL for the duration of every
/// statement (Database::ddl latch), so sessions may cache the pointer
/// for one statement but never across statements.
class Catalog {
 public:
  Catalog(BufferPool* pool, uint64_t memory_budget_bytes,
          MetadataCosts costs = MetadataCosts());

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);

  /// Creates a B+Tree index over `column_names` of `table`.
  Result<IndexInfo*> CreateIndex(const std::string& table,
                                 const std::string& index_name,
                                 const std::vector<std::string>& column_names,
                                 bool unique);
  Status DropIndex(const std::string& index_name);

  TableInfo* GetTable(const std::string& name);
  const TableInfo* GetTable(const std::string& name) const;
  TableInfo* GetTable(TableId id);

  size_t table_count() const;
  size_t index_count() const;
  std::vector<std::string> TableNames() const;

  uint64_t metadata_bytes() const;
  uint64_t memory_budget_bytes() const { return memory_budget_; }
  /// Buffer-pool frames left after the meta-data charge.
  size_t BufferFrames() const;

  /// Serializes every table/index definition plus its physical anchors
  /// (heap first page, index roots) into a deterministic blob. Logged by
  /// DDL group records and by checkpoints; the blob carries no page
  /// contents — those are the store's.
  std::string Snapshot() const;

  /// Physical locations that moved after the snapshot was taken (a heap
  /// grew its first page, a root split); recovery derives these from the
  /// per-table meta of replayed DML groups.
  struct TableOverride {
    PageId first_page = kInvalidPageId;
    std::vector<std::pair<IndexId, PageId>> index_roots;
  };

  /// Rebuilds the catalog from a Snapshot blob against an already-
  /// recovered page store: heaps re-walk their page chains, B-trees
  /// re-walk from their roots. Everything previously registered is
  /// discarded without freeing pages (the store was reset by recovery).
  /// An empty blob restores the empty catalog.
  Status Restore(const std::string& blob,
                 const std::unordered_map<TableId, TableOverride>& overrides);

 private:
  // Unlocked internals; callers hold mu_ (shared or exclusive as noted).
  TableInfo* FindTableLocked(const std::string& name) const;
  TableInfo* FindTableLocked(TableId id) const;
  size_t BufferFramesLocked() const;
  void Recharge(int64_t delta_bytes);  // caller holds mu_ exclusively

  BufferPool* pool_;
  uint64_t memory_budget_;
  MetadataCosts costs_;
  uint64_t metadata_bytes_ = 0;

  mutable SharedLatch mu_{LatchRank::kCatalog, "catalog"};
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::unordered_map<std::string, TableId> index_to_table_;
  TableId next_table_id_ = 1;
  IndexId next_index_id_ = 1;
};

}  // namespace mtdb

#endif  // MTDB_CATALOG_CATALOG_H_
