#ifndef MTDB_COMMON_TYPES_H_
#define MTDB_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace mtdb {

/// Column data types supported by the engine. DATE is stored as a day
/// number (days since 1970-01-01) but is a distinct logical type so the
/// mapping layer can route values into typed chunk columns.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kDate,
  kString,
};

const char* TypeName(TypeId type);

/// Parses a SQL type name ("INT", "BIGINT", "VARCHAR", "DATE", ...).
/// Returns kNull when unknown.
TypeId TypeFromName(const std::string& name);

/// True for types whose values are stored inline with fixed width.
bool IsFixedWidth(TypeId type);

/// Storage footprint in bytes for fixed-width types (0 for kString).
uint32_t FixedWidthOf(TypeId type);

/// Physical value-class used by generic (pivot/chunk) structures: the
/// paper groups columns into INTEGER / DATE / VARCHAR data columns; we
/// add DOUBLE for the CRM testbed's numeric measures.
enum class StorageClass : uint8_t {
  kIntLike = 0,
  kDoubleLike = 1,
  kDateLike = 2,
  kStringLike = 3,
};

inline constexpr int kNumStorageClasses = 4;

/// The physical column type generic structures use for a storage class.
TypeId PhysicalTypeOf(StorageClass cls);

StorageClass StorageClassOf(TypeId type);
const char* StorageClassName(StorageClass cls);

using TenantId = int32_t;
using TableId = int32_t;
using IndexId = int32_t;
using PageId = int32_t;

inline constexpr PageId kInvalidPageId = -1;

/// Record identifier: page + slot within the page.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const = default;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_TYPES_H_
