#ifndef MTDB_COMMON_RESULT_H_
#define MTDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mtdb {

/// Value-or-error holder, modeled after arrow::Result. A Result is either
/// OK and holds a T, or holds a non-OK Status. [[nodiscard]] so silently
/// dropped errors fail the build.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` when in error state.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, propagating errors.
/// Usage: MTDB_ASSIGN_OR_RETURN(auto x, ComputeX());
#define MTDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define MTDB_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define MTDB_ASSIGN_OR_RETURN_CAT2(a, b) MTDB_ASSIGN_OR_RETURN_CAT(a, b)
#define MTDB_ASSIGN_OR_RETURN(lhs, expr) \
  MTDB_ASSIGN_OR_RETURN_IMPL(            \
      MTDB_ASSIGN_OR_RETURN_CAT2(_mtdb_result_, __LINE__), lhs, expr)

}  // namespace mtdb

#endif  // MTDB_COMMON_RESULT_H_
