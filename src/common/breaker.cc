#include "common/breaker.h"

#include <algorithm>
#include <mutex>

namespace mtdb {

namespace {

uint64_t BackoffNs(uint64_t consecutive_trips,
                   const CircuitBreaker::Options& opts) {
  // consecutive_trips >= 1; shift capped so the doubling cannot overflow
  // before the max clamps it.
  uint64_t shift = std::min<uint64_t>(consecutive_trips - 1, 32);
  uint64_t backoff = opts.initial_backoff_ns << shift;
  if (backoff == 0 || (backoff >> shift) != opts.initial_backoff_ns) {
    backoff = opts.max_backoff_ns;
  }
  return std::min(backoff, opts.max_backoff_ns);
}

}  // namespace

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::Decision CircuitBreaker::Admit(uint64_t now_ns,
                                               const Options& opts,
                                               uint64_t* retry_after_ns) {
  (void)opts;
  std::lock_guard<Latch> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Decision::kAllow;
    case BreakerState::kOpen:
      if (now_ns >= open_until_ns_) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        return Decision::kAllowProbe;
      }
      if (retry_after_ns != nullptr) *retry_after_ns = open_until_ns_ - now_ns;
      return Decision::kReject;
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Decision::kAllowProbe;
      }
      // A probe is deciding the tenant's fate right now; retry shortly.
      if (retry_after_ns != nullptr) *retry_after_ns = 0;
      return Decision::kReject;
  }
  return Decision::kAllow;
}

CircuitBreaker::Transition CircuitBreaker::OnResult(bool hard_fault,
                                                    uint64_t now_ns,
                                                    const Options& opts) {
  std::lock_guard<Latch> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (!hard_fault) {
        strikes_ = 0;
        return Transition::kNone;
      }
      if (++strikes_ < opts.threshold) return Transition::kNone;
      state_ = BreakerState::kOpen;
      strikes_ = 0;
      trips_++;
      consecutive_trips_++;
      open_until_ns_ = now_ns + BackoffNs(consecutive_trips_, opts);
      return Transition::kOpened;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (hard_fault) {
        state_ = BreakerState::kOpen;
        trips_++;
        consecutive_trips_++;
        open_until_ns_ = now_ns + BackoffNs(consecutive_trips_, opts);
        return Transition::kOpened;
      }
      state_ = BreakerState::kClosed;
      strikes_ = 0;
      consecutive_trips_ = 0;
      open_until_ns_ = 0;
      return Transition::kClosed;
    case BreakerState::kOpen:
      // A statement admitted before the trip finished late; its outcome
      // says nothing about the backoff window — ignore it.
      return Transition::kNone;
  }
  return Transition::kNone;
}

void CircuitBreaker::AbandonProbe() {
  std::lock_guard<Latch> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<Latch> lock(mu_);
  return state_;
}

void CircuitBreaker::ForceClose() {
  std::lock_guard<Latch> lock(mu_);
  state_ = BreakerState::kClosed;
  strikes_ = 0;
  consecutive_trips_ = 0;
  open_until_ns_ = 0;
  probe_in_flight_ = false;
}

uint64_t CircuitBreaker::strikes() const {
  std::lock_guard<Latch> lock(mu_);
  return strikes_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<Latch> lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::open_until_ns() const {
  std::lock_guard<Latch> lock(mu_);
  return open_until_ns_;
}

}  // namespace mtdb
