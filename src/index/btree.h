#ifndef MTDB_INDEX_BTREE_H_
#define MTDB_INDEX_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

namespace mtdb {

/// A disk-resident B+Tree mapping memcomparable byte-string keys to RIDs.
///
/// Duplicates are supported by suffixing every key with its RID, so the
/// stored keys are unique and a (key, rid) pair can be deleted exactly.
/// Composite keys with redundant leading components (Tenant, Table,
/// Chunk, ...) behave as partitioned B-Trees (Graefe, CIDR'03): the
/// leading components confine a lookup to one contiguous partition. Page
/// images live in the shared buffer pool, so index root/interior pages
/// compete with data pages for memory — the effect §5 measures.
class BTree {
 public:
  /// Creates an empty tree (allocates a root leaf).
  explicit BTree(BufferPool* pool);
  /// Attaches to an existing tree.
  BTree(BufferPool* pool, PageId root);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  PageId root() const { return root_; }
  uint64_t entry_count() const { return entries_; }
  /// Number of pages ever allocated to this tree (root + interior + leaf).
  size_t page_count() const { return all_pages_.size(); }

  Status Insert(std::string_view key, const Rid& rid);
  /// Removes one (key, rid) entry. NotFound if absent.
  Status Delete(std::string_view key, const Rid& rid);

  /// True if any entry's key equals `key` (ignoring the rid suffix).
  Result<bool> Contains(std::string_view key);

  /// Collects the RIDs of all entries with exactly this key.
  Result<std::vector<Rid>> Lookup(std::string_view key);

  /// Streaming scan over keys in [lo, hi).
  class Iterator {
   public:
    /// Returns false at end; otherwise fills rid (and `key` if
    /// non-null). Surfaces storage errors after the pool's retries.
    Result<bool> Next(Rid* rid, std::string* key = nullptr);

   private:
    friend class BTree;
    Iterator(BTree* tree, PageId leaf, int pos, std::string hi)
        : tree_(tree), leaf_(leaf), pos_(pos), hi_(std::move(hi)) {}
    BTree* tree_;
    PageId leaf_;
    int pos_;
    std::string hi_;
  };

  Result<Iterator> Scan(std::string_view lo, std::string_view hi);

  /// Releases every page of the tree back to the store.
  void Free();

  /// Recovery: after attaching to an existing root, walks the whole tree
  /// to repopulate the page list and the entry count.
  Status RebuildFromRoot();

  /// Tree height (1 = root is a leaf). Walks the leftmost path.
  Result<int> Height();

  /// Per-index reader/writer latch. Like TableHeap::latch(), this is
  /// acquired only by the engine's statement pipeline (shared for
  /// lookups/scans, exclusive for inserts/deletes) at coarse per-index
  /// granularity; BTree methods themselves never lock it, as the
  /// underlying shared_mutex is not recursive. The catalog stamps its
  /// lockdep order key (TableId + IndexId) at registration.
  SharedLatch& latch() const { return latch_; }

 private:
  struct NodeRef;  // defined in btree.cc

  /// Descends to the leaf that should contain `key`; records the path of
  /// (page id, child index) in `path` when non-null.
  Result<PageId> FindLeaf(std::string_view key,
                          std::vector<std::pair<PageId, int>>* path);
  /// Splits `left_id` and links the new sibling into its parent. Pins
  /// every page it will modify *before* mutating anything, so an I/O
  /// failure surfaces with the tree structurally untouched.
  Status SplitAndPropagate(std::vector<std::pair<PageId, int>>& path,
                           PageId left_id);

  BufferPool* pool_;
  PageId root_;
  uint64_t entries_ = 0;
  std::vector<PageId> all_pages_;
  mutable SharedLatch latch_{LatchRank::kTableIndex, "btree"};
};

/// Appends an order-preserving RID suffix to `key` (used by BTree to
/// disambiguate duplicate keys; exposed for tests).
void AppendRidSuffix(const Rid& rid, std::string* key);

}  // namespace mtdb

#endif  // MTDB_INDEX_BTREE_H_
