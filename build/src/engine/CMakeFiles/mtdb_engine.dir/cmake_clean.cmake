file(REMOVE_RECURSE
  "CMakeFiles/mtdb_engine.dir/database.cc.o"
  "CMakeFiles/mtdb_engine.dir/database.cc.o.d"
  "CMakeFiles/mtdb_engine.dir/planner.cc.o"
  "CMakeFiles/mtdb_engine.dir/planner.cc.o.d"
  "libmtdb_engine.a"
  "libmtdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
