file(REMOVE_RECURSE
  "CMakeFiles/mtdb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mtdb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mtdb_storage.dir/page.cc.o"
  "CMakeFiles/mtdb_storage.dir/page.cc.o.d"
  "CMakeFiles/mtdb_storage.dir/page_store.cc.o"
  "CMakeFiles/mtdb_storage.dir/page_store.cc.o.d"
  "CMakeFiles/mtdb_storage.dir/row_codec.cc.o"
  "CMakeFiles/mtdb_storage.dir/row_codec.cc.o.d"
  "CMakeFiles/mtdb_storage.dir/table_heap.cc.o"
  "CMakeFiles/mtdb_storage.dir/table_heap.cc.o.d"
  "libmtdb_storage.a"
  "libmtdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
