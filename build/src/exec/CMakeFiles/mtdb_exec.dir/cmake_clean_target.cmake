file(REMOVE_RECURSE
  "libmtdb_exec.a"
)
