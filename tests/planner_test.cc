#include <gtest/gtest.h>

#include "engine/database.h"

namespace mtdb {
namespace {

/// Plan-shape tests (the paper's Test 2 explains plans for Q2 over
/// chunked and conventional schemas).
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : db_(EngineOptions()) {
    // A chunk-table-like physical schema: meta columns + data columns.
    EXPECT_TRUE(db_.Execute("CREATE TABLE chunkdata (tenant INT, tbl INT, "
                            "chunk INT, row BIGINT, int1 BIGINT, str1 VARCHAR)")
                    .ok());
    EXPECT_TRUE(db_.Execute("CREATE UNIQUE INDEX ux_tcr ON chunkdata "
                            "(tenant, tbl, chunk, row)")
                    .ok());
    EXPECT_TRUE(db_.Execute("CREATE INDEX ix_itcr ON chunkdata "
                            "(int1, tenant, tbl, chunk)")
                    .ok());
    for (int row = 0; row < 50; ++row) {
      EXPECT_TRUE(db_.Execute("INSERT INTO chunkdata VALUES (17, 0, 0, " +
                              std::to_string(row) + ", " +
                              std::to_string(row * 2) + ", 'v" +
                              std::to_string(row) + "')")
                      .ok());
      EXPECT_TRUE(db_.Execute("INSERT INTO chunkdata VALUES (17, 0, 1, " +
                              std::to_string(row) + ", " +
                              std::to_string(row * 3) + ", 'w" +
                              std::to_string(row) + "')")
                      .ok());
    }
  }

  Database db_;
};

TEST_F(PlannerTest, MetadataPredicatesUseThePartitionedBTree) {
  auto plan = db_.Explain(
      "SELECT s0.int1 FROM chunkdata s0 "
      "WHERE s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 1");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("ux_tcr"), std::string::npos) << *plan;
}

TEST_F(PlannerTest, AligningJoinUsesIndexNestedLoop) {
  auto plan = db_.Explain(
      "SELECT s0.int1, s1.str1 FROM chunkdata s0, chunkdata s1 "
      "WHERE s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0 "
      "AND s1.tenant = 17 AND s1.tbl = 0 AND s1.chunk = 1 "
      "AND s0.row = s1.row");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexNLJoin"), std::string::npos) << *plan;
}

TEST_F(PlannerTest, ValueIndexDrivesSelectiveProbe) {
  db_.set_planner_mode(PlannerMode::kAdvanced);
  auto plan = db_.Explain(
      "SELECT s0.row FROM chunkdata s0 "
      "WHERE s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0 AND s0.int1 = ?");
  ASSERT_TRUE(plan.ok());
  // The advanced planner must pick the itcr value index (int1 leading).
  EXPECT_NE(plan->find("ix_itcr"), std::string::npos) << *plan;
}

TEST_F(PlannerTest, NaivePlannerFollowsWrittenPredicateOrder) {
  db_.set_planner_mode(PlannerMode::kNaive);
  // Meta-data-first: naive picks the tcr index on the weak tenant prefix.
  auto meta_first = db_.Explain(
      "SELECT s0.row FROM chunkdata s0 "
      "WHERE s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0 AND s0.int1 = ?");
  ASSERT_TRUE(meta_first.ok());
  EXPECT_NE(meta_first->find("ux_tcr"), std::string::npos) << *meta_first;
  // Selective-first: naive now probes the value index.
  auto selective_first = db_.Explain(
      "SELECT s0.row FROM chunkdata s0 "
      "WHERE s0.int1 = ? AND s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0");
  ASSERT_TRUE(selective_first.ok());
  EXPECT_NE(selective_first->find("ix_itcr"), std::string::npos)
      << *selective_first;
}

TEST_F(PlannerTest, AdvancedIgnoresWrittenPredicateOrder) {
  db_.set_planner_mode(PlannerMode::kAdvanced);
  auto a = db_.Explain(
      "SELECT s0.row FROM chunkdata s0 "
      "WHERE s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0 AND s0.int1 = ?");
  auto b = db_.Explain(
      "SELECT s0.row FROM chunkdata s0 "
      "WHERE s0.int1 = ? AND s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 0");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(PlannerTest, NestedQueryUnnestedByAdvancedPlanner) {
  db_.set_planner_mode(PlannerMode::kAdvanced);
  // The §6.1 reconstruction-query shape for Q1.
  auto plan = db_.Explain(
      "SELECT account17.beds FROM (SELECT s0.str1 AS hospital, "
      "s0.int1 AS beds FROM chunkdata s0 WHERE s0.tenant = 17 AND "
      "s0.tbl = 0 AND s0.chunk = 1) AS account17 "
      "WHERE account17.hospital = 'w3'");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Materialize"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
}

TEST_F(PlannerTest, NestedAndFlattenedReturnSameRows) {
  const std::string nested =
      "SELECT account17.beds FROM (SELECT s0.str1 AS hospital, "
      "s0.int1 AS beds FROM chunkdata s0 WHERE s0.tenant = 17 AND "
      "s0.tbl = 0 AND s0.chunk = 1) AS account17 "
      "WHERE account17.hospital = 'w3'";
  const std::string flat =
      "SELECT s0.int1 FROM chunkdata s0 WHERE s0.str1 = 'w3' AND "
      "s0.tenant = 17 AND s0.tbl = 0 AND s0.chunk = 1";
  for (PlannerMode mode : {PlannerMode::kNaive, PlannerMode::kAdvanced}) {
    db_.set_planner_mode(mode);
    auto a = db_.Query(nested);
    auto b = db_.Query(flat);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->rows.size(), 1u);
    ASSERT_EQ(b->rows.size(), 1u);
    EXPECT_EQ(a->rows[0][0].AsInt64(), b->rows[0][0].AsInt64());
  }
}

TEST_F(PlannerTest, JoinOrderIndependenceOfResults) {
  // Both FROM orders must give identical results in both modes.
  const std::string q1 =
      "SELECT s0.int1, s1.int1 FROM chunkdata s0, chunkdata s1 "
      "WHERE s0.chunk = 0 AND s1.chunk = 1 AND s0.tenant = 17 AND "
      "s1.tenant = 17 AND s0.tbl = 0 AND s1.tbl = 0 AND s0.row = s1.row "
      "AND s0.row < 5 ORDER BY s0.int1";
  const std::string q2 =
      "SELECT s0.int1, s1.int1 FROM chunkdata s1, chunkdata s0 "
      "WHERE s0.chunk = 0 AND s1.chunk = 1 AND s0.tenant = 17 AND "
      "s1.tenant = 17 AND s0.tbl = 0 AND s1.tbl = 0 AND s0.row = s1.row "
      "AND s0.row < 5 ORDER BY s0.int1";
  for (PlannerMode mode : {PlannerMode::kNaive, PlannerMode::kAdvanced}) {
    db_.set_planner_mode(mode);
    auto a = db_.Query(q1);
    auto b = db_.Query(q2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->rows.size(), 5u);
    ASSERT_EQ(b->rows.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(a->rows[i][0].AsInt64(), b->rows[i][0].AsInt64());
      EXPECT_EQ(a->rows[i][1].AsInt64(), b->rows[i][1].AsInt64());
    }
  }
}

}  // namespace
}  // namespace mtdb
