# Empty compiler generated dependencies file for bench_chunk_query_cold.
# This may be replaced when dependencies are built.
