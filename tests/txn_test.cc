// Tests for client-visible cross-statement transactions: BEGIN / COMMIT /
// ROLLBACK through the SQL surface and the Session / TenantSession APIs
// (src/engine/txn_context.{h,cc} + the session front doors), including
// the poisoned/aborted state machine, DDL rejection, auto-rollback on
// deadline expiry and admission rejection, destructor rollback, the
// txn.* metric series, the tracer's transaction grouping, and the
// durable WAL bracket (open transactions survive checkpoints via the
// meta and are undone on reopen; committed ones persist).
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "common/deadline.h"
#include "common/trace.h"
#include "core/tenant_session.h"
#include "engine/database.h"
#include "engine/session.h"
#include "mapping_test_util.h"
#include "sql/printer.h"

namespace mtdb {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "mtdb_txn_" + tag;
  fs::remove_all(dir);
  return dir;
}

void AuditClean(mapping::SchemaMapping* layout, const char* when) {
  analysis::Verifier verifier(layout);
  auto diagnostics = verifier.Run();
  ASSERT_TRUE(diagnostics.ok()) << when << ": "
                                << diagnostics.status().ToString();
  EXPECT_FALSE(analysis::HasErrors(*diagnostics))
      << when << ": " << analysis::FormatDiagnostics(*diagnostics);
}

int64_t CountRows(Database* db, const std::string& table) {
  auto r = db->Query("SELECT COUNT(*) FROM " + table);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].AsInt64();
}

// ------------------------------------------------- engine sessions

class EngineTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(EngineOptions{});
    ASSERT_TRUE(db_->Execute("CREATE TABLE t (id BIGINT, name VARCHAR)").ok());
    session_ = std::make_unique<Session>(db_->OpenSession());
    ASSERT_TRUE(
        session_->Execute("INSERT INTO t VALUES (1, 'keep')", {}).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(EngineTxnTest, CommitMakesAllStatementsVisible) {
  ASSERT_TRUE(session_->Begin().ok());
  EXPECT_TRUE(session_->in_transaction());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (3, 'b')", {}).ok());
  ASSERT_TRUE(
      session_->Execute("UPDATE t SET name = 'x' WHERE id = 1", {}).ok());
  ASSERT_TRUE(session_->Commit().ok());
  EXPECT_FALSE(session_->in_transaction());
  EXPECT_EQ(CountRows(db_.get(), "t"), 3);
  auto r = db_->Query("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "x");
  EXPECT_EQ(db_->metrics_registry()->GetCounter("txn.commit.t-1")->value(),
            1u);
}

TEST_F(EngineTxnTest, RollbackRestoresPreTransactionState) {
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  ASSERT_TRUE(
      session_->Execute("UPDATE t SET name = 'clobbered' WHERE id = 1", {})
          .ok());
  ASSERT_TRUE(session_->Execute("DELETE FROM t WHERE id = 2", {}).ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (4, 'd')", {}).ok());
  ASSERT_TRUE(session_->Rollback().ok());
  EXPECT_FALSE(session_->in_transaction());
  EXPECT_EQ(CountRows(db_.get(), "t"), 1);
  auto r = db_->Query("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "keep");
  EXPECT_EQ(db_->metrics_registry()->GetCounter("txn.rollback.t-1")->value(),
            1u);
}

TEST_F(EngineTxnTest, SqlSurfaceRoutesToTransactionControl) {
  ASSERT_TRUE(session_->Execute("BEGIN", {}).ok());
  EXPECT_TRUE(session_->in_transaction());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  ASSERT_TRUE(session_->Execute("COMMIT", {}).ok());
  EXPECT_FALSE(session_->in_transaction());
  ASSERT_TRUE(session_->Execute("BEGIN TRANSACTION", {}).ok());
  ASSERT_TRUE(session_->Execute("DELETE FROM t WHERE id = 2", {}).ok());
  ASSERT_TRUE(session_->Execute("ROLLBACK", {}).ok());
  EXPECT_EQ(CountRows(db_.get(), "t"), 2);
}

TEST_F(EngineTxnTest, BracketMisuseIsRejected) {
  auto no_txn = session_->Commit();
  EXPECT_EQ(no_txn.code(), StatusCode::kFailedPrecondition);
  no_txn = session_->Rollback();
  EXPECT_EQ(no_txn.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session_->Begin().ok());
  auto nested = session_->Begin();
  EXPECT_EQ(nested.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session_->Rollback().ok());
}

TEST_F(EngineTxnTest, FailedStatementPoisonsUntilRollback) {
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  // Parseable but unexecutable: unknown table.
  auto bad = session_->Execute("INSERT INTO nope VALUES (1, 'x')", {});
  ASSERT_FALSE(bad.ok());
  // Everything but ROLLBACK is now rejected — including reads.
  auto blocked = session_->Execute("SELECT * FROM t", {});
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  auto commit = session_->Commit();
  EXPECT_EQ(commit.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session_->in_transaction());
  ASSERT_TRUE(session_->Rollback().ok());
  EXPECT_EQ(CountRows(db_.get(), "t"), 1);
  // The session is usable again after the acknowledgement.
  EXPECT_TRUE(session_->Execute("SELECT * FROM t", {}).ok());
}

TEST_F(EngineTxnTest, DdlIsRejectedInsideATransaction) {
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  auto ddl = session_->Execute("CREATE TABLE u (a INT)", {});
  ASSERT_FALSE(ddl.ok());
  EXPECT_EQ(ddl.status().code(), StatusCode::kFailedPrecondition);
  ddl = session_->Execute("DROP TABLE t", {});
  EXPECT_EQ(ddl.status().code(), StatusCode::kFailedPrecondition);
  // The rejection gates the statement up front: the transaction is
  // still active and commits cleanly.
  ASSERT_TRUE(session_->Commit().ok());
  EXPECT_EQ(CountRows(db_.get(), "t"), 2);
}

TEST_F(EngineTxnTest, SelectAndExplainRunInsideATransaction) {
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  auto rows = session_->Execute("SELECT * FROM t", {});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(RowsOf(*rows).rows.size(), 2u);
  auto explained =
      session_->Execute("EXPLAIN MAPPING DELETE FROM t WHERE id = 2", {});
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_TRUE(HasExplanation(*explained));
  // EXPLAIN only plans — it must stage nothing into the undo log.
  ASSERT_TRUE(session_->Rollback().ok());
  EXPECT_EQ(CountRows(db_.get(), "t"), 1);
}

TEST_F(EngineTxnTest, DeadlineExpiryAbortsAndRollsBack) {
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
  auto expired = session_->Execute("INSERT INTO t VALUES (3, 'b')", {},
                                   deadline::Deadline::AfterMillis(-5));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  // The session already rolled the transaction back; statements are
  // rejected until ROLLBACK acknowledges.
  auto blocked = session_->Execute("INSERT INTO t VALUES (4, 'c')", {});
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      db_->metrics_registry()->GetCounter("txn.auto_rollback.t-1")->value(),
      1u);
  ASSERT_TRUE(session_->Rollback().ok());
  EXPECT_EQ(CountRows(db_.get(), "t"), 1);
}

TEST_F(EngineTxnTest, SessionDestructionRollsBackOpenTransaction) {
  {
    Session doomed = db_->OpenSession();
    ASSERT_TRUE(doomed.Begin().ok());
    ASSERT_TRUE(doomed.Execute("INSERT INTO t VALUES (2, 'a')", {}).ok());
    ASSERT_TRUE(
        doomed.Execute("UPDATE t SET name = 'gone' WHERE id = 1", {}).ok());
  }
  EXPECT_EQ(CountRows(db_.get(), "t"), 1);
  auto r = db_->Query("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "keep");
  EXPECT_EQ(
      db_->metrics_registry()->GetCounter("txn.auto_rollback.t-1")->value(),
      1u);
}

TEST_F(EngineTxnTest, OpenGaugeTracksTheBracket) {
  // Gauges are evaluated at Snapshot() time and land in `counters`.
  auto gauge = [&]() -> uint64_t {
    return db_->metrics_registry()->Snapshot().CounterValue("txn.open.t-1");
  };
  ASSERT_TRUE(session_->Begin().ok());
  EXPECT_EQ(gauge(), 1u);
  ASSERT_TRUE(session_->Commit().ok());
  EXPECT_EQ(gauge(), 0u);
  ASSERT_TRUE(session_->Begin().ok());
  ASSERT_TRUE(session_->Rollback().ok());
  EXPECT_EQ(gauge(), 0u);
  EXPECT_EQ(db_->metrics_registry()->GetCounter("txn.begin.t-1")->value(),
            2u);
}

// ------------------------------------------------- mapping sessions

class MappingTxnTest : public ::testing::TestWithParam<mapping::LayoutKind> {
 protected:
  void SetUp() override {
    app_ = mapping::FigureFourSchema();
    db_ = std::make_unique<Database>(EngineOptions{});
    layout_ = mapping::MakeLayout(GetParam(), db_.get(), &app_);
    ASSERT_TRUE(layout_->Bootstrap().ok());
    ASSERT_TRUE(layout_->CreateTenant(0).ok());
    ASSERT_TRUE(layout_->CreateTenant(1).ok());
    ASSERT_TRUE(layout_
                    ->Execute(0,
                              "INSERT INTO account (aid, name) VALUES "
                              "(1, 'base')",
                              {})
                    .ok());
  }

  std::vector<Row> Rows(TenantId t) {
    auto r = layout_->Query(t, "SELECT * FROM account ORDER BY aid");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows : std::vector<Row>{};
  }

  mapping::AppSchema app_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<mapping::SchemaMapping> layout_;
};

TEST_P(MappingTxnTest, CommitAndRollbackAcrossLogicalStatements) {
  mapping::TenantSession session = layout_->OpenSession(0);

  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(session
                  .Execute("INSERT INTO account (aid, name) VALUES (2, 'a'), "
                           "(3, 'b')")
                  .ok());
  ASSERT_TRUE(
      session.Execute("UPDATE account SET name = 'a2' WHERE aid = 2").ok());
  ASSERT_TRUE(session.Commit().ok());
  EXPECT_EQ(Rows(0).size(), 3u);

  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(session.Execute("DELETE FROM account WHERE aid = 2").ok());
  ASSERT_TRUE(
      session.Execute("UPDATE account SET name = 'zz' WHERE aid = 3").ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO account (aid, name) VALUES (9, 'c')")
          .ok());
  ASSERT_TRUE(session.Rollback().ok());

  std::vector<Row> rows = Rows(0);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0].AsInt64(), 2);
  EXPECT_EQ(rows[1][1].AsString(), "a2");
  EXPECT_EQ(rows[2][1].AsString(), "b");
  // Other tenants never see a neighbour's transaction.
  EXPECT_EQ(Rows(1).size(), 0u);
  AuditClean(layout_.get(), "after rollback");
  EXPECT_EQ(db_->metrics_registry()->GetCounter("txn.commit.t0")->value(),
            1u);
  EXPECT_EQ(db_->metrics_registry()->GetCounter("txn.rollback.t0")->value(),
            1u);
}

TEST_P(MappingTxnTest, SqlFirstWordRoutingControlsTheBracket) {
  mapping::TenantSession session = layout_->OpenSession(0);
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  EXPECT_TRUE(session.in_transaction());
  ASSERT_TRUE(
      session.Execute("INSERT INTO account (aid, name) VALUES (2, 'a')")
          .ok());
  ASSERT_TRUE(session.Execute("  begin  ").ok() == false)
      << "nested BEGIN must be rejected";
  ASSERT_TRUE(session.Execute("commit").ok());
  EXPECT_FALSE(session.in_transaction());
  ASSERT_TRUE(session.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(session.Execute("DELETE FROM account WHERE aid = 2").ok());
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());
  EXPECT_EQ(Rows(0).size(), 2u);
}

TEST_P(MappingTxnTest, SessionTeardownRollsBackAndAuditsClean) {
  {
    mapping::TenantSession doomed = layout_->OpenSession(0);
    ASSERT_TRUE(doomed.Begin().ok());
    ASSERT_TRUE(
        doomed.Execute("INSERT INTO account (aid, name) VALUES (7, 'x')")
            .ok());
    ASSERT_TRUE(doomed.InsertRow("account", {Value::Int64(8),
                                             Value::String("y")})
                    .ok());
  }
  EXPECT_EQ(Rows(0).size(), 1u);
  AuditClean(layout_.get(), "after teardown rollback");
  EXPECT_EQ(
      db_->metrics_registry()->GetCounter("txn.auto_rollback.t0")->value(),
      1u);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, MappingTxnTest,
    ::testing::Values(mapping::LayoutKind::kBasic,
                      mapping::LayoutKind::kPrivate,
                      mapping::LayoutKind::kUniversal,
                      mapping::LayoutKind::kChunkFolding),
    [](const ::testing::TestParamInfo<mapping::LayoutKind>& info) {
      return std::string(mapping::LayoutKindName(info.param));
    });

// Admission rejection mid-transaction: the statement never runs, the
// transaction is rolled back on the spot, and ROLLBACK acknowledges.
TEST(MappingTxnAdmissionTest, AdmissionRejectionAbortsTheTransaction) {
  DatabaseOptions dopts;
  dopts.admission.enabled = true;
  dopts.admission.tenant_rate = 0.1;  // no refill inside the test
  dopts.admission.tenant_burst = 2.0;
  Database db(dopts);
  mapping::AppSchema app = mapping::FigureFourSchema();
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kPrivate, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(0).ok());
  ASSERT_TRUE(layout
                  ->Execute(0, "INSERT INTO account (aid, name) VALUES "
                               "(1, 'base')",
                            {})
                  .ok());

  mapping::TenantSession session = layout->OpenSession(0);
  // BEGIN itself is not admitted: it spends no token.
  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO account (aid, name) VALUES (2, 'a')")
          .ok());  // burst 1
  ASSERT_TRUE(
      session.Execute("UPDATE account SET name = 'b' WHERE aid = 2")
          .ok());  // burst 2
  auto rejected =
      session.Execute("INSERT INTO account (aid, name) VALUES (3, 'c')");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(db.metrics_registry()->GetCounter("txn.auto_rollback.t0")->value(),
            1u);
  auto blocked = session.Execute("DELETE FROM account WHERE aid = 1");
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  // COMMIT and ROLLBACK stay executable with the bucket empty; COMMIT
  // refuses (aborted), ROLLBACK acknowledges.
  EXPECT_EQ(session.Commit().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Rollback().ok());
  // The compensations ran despite the empty bucket: only the base row
  // is left.
  auto r = layout->Query(0, "SELECT * FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

// ------------------------------------------------- tracer grouping

TEST(TxnTracerTest, StatementsAttributeToTxnSeriesAndParentSpan) {
  Database db{EngineOptions{}};
  mapping::AppSchema app = mapping::FigureFourSchema();
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kBasic, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(0).ok());

  mapping::TenantSession session = layout->OpenSession(0);
  session.EnableTracing();
  const std::string name = layout->name();

  // Autocommit statement: plain series, untouched by the feature.
  ASSERT_TRUE(
      session.Execute("INSERT INTO account (aid, name) VALUES (1, 'a')")
          .ok());
  EXPECT_EQ(db.metrics_registry()
                ->GetCounter("stmt.count." + name + ".insert.t0")
                ->value(),
            1u);

  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO account (aid, name) VALUES (2, 'b')")
          .ok());
  ASSERT_TRUE(session.Query("SELECT * FROM account").ok());
  ASSERT_TRUE(session.Commit().ok());

  // In-transaction statements land on the ".txn" series...
  EXPECT_EQ(db.metrics_registry()
                ->GetCounter("stmt.count." + name + ".insert.txn.t0")
                ->value(),
            1u);
  EXPECT_EQ(db.metrics_registry()
                ->GetCounter("stmt.count." + name + ".select.txn.t0")
                ->value(),
            1u);
  // ...and the autocommit series did not move.
  EXPECT_EQ(db.metrics_registry()
                ->GetCounter("stmt.count." + name + ".insert.t0")
                ->value(),
            1u);
  // The transaction itself aggregates once, and its parent span groups
  // one summary child per statement.
  EXPECT_EQ(db.metrics_registry()
                ->GetCounter("stmt.count." + name + ".txn.t0")
                ->value(),
            1u);
  const trace::StatementTrace* txn = session.tracer()->last_transaction();
  ASSERT_NE(txn, nullptr);
  EXPECT_TRUE(txn->ok);
  EXPECT_EQ(txn->kind, "txn");
  ASSERT_NE(txn->root, nullptr);
  EXPECT_EQ(txn->root->children.size(), 2u);
  EXPECT_EQ(txn->root->children[0]->name, "insert");
  EXPECT_EQ(txn->root->children[1]->name, "select");
}

// ------------------------------------------------- durable bracket

// Committed transactions survive reopen; a transaction whose bracket
// was still open when the process stopped is undone — even when a
// checkpoint ran mid-transaction, leaving the hints only in the
// checkpoint meta (v2) and not in the WAL.
TEST(TxnDurabilityTest, OpenBracketIsUndoneOnReopenCommittedOneSurvives) {
  const std::string dir = FreshDir("bracket");
  {
    auto opened = Database::Open(DatabaseOptions::WithPath(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id BIGINT, name VARCHAR)").ok());

    Session committed = db->OpenSession();
    ASSERT_TRUE(committed.Begin().ok());
    ASSERT_TRUE(
        committed.Execute("INSERT INTO t VALUES (1, 'keep')", {}).ok());
    ASSERT_TRUE(
        committed.Execute("INSERT INTO t VALUES (2, 'keep2')", {}).ok());
    ASSERT_TRUE(committed.Commit().ok());

    // Open bracket, checkpointed mid-transaction: the accumulated hints
    // ride the checkpoint meta while the WAL is truncated underneath.
    uint64_t open_txn = 0;
    {
      auto begun = db->BeginClientTxn(/*tenant=*/0);
      ASSERT_TRUE(begun.ok()) << begun.status().ToString();
      open_txn = *begun;
    }
    ASSERT_TRUE(
        db->StageClientHint(open_txn, "DELETE FROM t WHERE id = 3").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (3, 'undo me')").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(
        db->StageClientHint(open_txn,
                            "UPDATE t SET name = 'keep' WHERE id = 1")
            .ok());
    ASSERT_TRUE(
        db->Execute("UPDATE t SET name = 'dirty' WHERE id = 1").ok());
    // Process stops here with the bracket still open: no EndClientTxn.
  }
  auto reopened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<Database> db = std::move(*reopened);
  EXPECT_EQ(CountRows(db.get(), "t"), 2)
      << "open transaction's insert survived recovery";
  auto r = db->Query("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "keep")
      << "open transaction's update survived recovery";
  auto r2 = db->Query("SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 1u) << "committed transaction lost";
}

// A durable mapping-layer transaction: COMMIT makes the multi-statement
// group atomic across reopen, ROLLBACK leaves no trace on disk.
TEST(TxnDurabilityTest, MappingTransactionIsAtomicAcrossReopen) {
  const std::string dir = FreshDir("mapping");
  mapping::AppSchema app = mapping::FigureFourSchema();
  {
    auto opened = Database::Open(DatabaseOptions::WithPath(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    std::unique_ptr<mapping::SchemaMapping> layout =
        mapping::MakeLayout(mapping::LayoutKind::kChunkFolding, db.get(),
                            &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    ASSERT_TRUE(layout->CreateTenant(0).ok());
    mapping::TenantSession session = layout->OpenSession(0);
    ASSERT_TRUE(session.Begin().ok());
    ASSERT_TRUE(session
                    .Execute("INSERT INTO account (aid, name) VALUES "
                             "(1, 'a'), (2, 'b')")
                    .ok());
    ASSERT_TRUE(
        session.Execute("UPDATE account SET name = 'a2' WHERE aid = 1")
            .ok());
    ASSERT_TRUE(session.Commit().ok());
    ASSERT_TRUE(session.Begin().ok());
    ASSERT_TRUE(session.Execute("DELETE FROM account WHERE aid = 2").ok());
    ASSERT_TRUE(session.Rollback().ok());
  }
  auto reopened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<Database> db = std::move(*reopened);
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kChunkFolding, db.get(), &app);
  ASSERT_TRUE(layout->Recover().ok());
  auto r = layout->Query(0, "SELECT * FROM account ORDER BY aid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][1].AsString(), "a2");
  EXPECT_EQ(r->rows[1][1].AsString(), "b");
  AuditClean(layout.get(), "after reopen");
}

}  // namespace
}  // namespace mtdb
