#include "core/universal_layout.h"

namespace mtdb {
namespace mapping {

Status UniversalTableLayout::Bootstrap() {
  Schema schema;
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
  schema.AddColumn(Column{"row", TypeId::kInt64, true});
  for (int i = 1; i <= width_; ++i) {
    schema.AddColumn(Column{"col" + std::to_string(i), TypeId::kString, false});
  }
  MTDB_RETURN_IF_ERROR(db_->CreateTable(TableName(), std::move(schema)));
  // Only the meta-data index is possible: either all tenants get a value
  // index on a data column or none do, so the layout provides none.
  return db_->CreateIndex(TableName(), "ux_universal_row",
                          {"tenant", "tbl", "row"}, /*unique=*/true);
}

Result<std::unique_ptr<TableMapping>> UniversalTableLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  if (static_cast<int>(eff.columns.size()) > width_) {
    return Status::ResourceExhausted(
        "universal table is " + std::to_string(width_) + " columns wide; " +
        table + " needs " + std::to_string(eff.columns.size()));
  }
  auto mapping = std::make_unique<TableMapping>();
  PhysicalSource source;
  source.physical_table = TableName();
  source.partition.emplace_back("tenant", Value::Int32(tenant));
  source.partition.emplace_back("tbl",
                                Value::Int32(TableNumber(tenant, table)));
  source.row_column = "row";
  mapping->sources.push_back(std::move(source));
  for (size_t i = 0; i < eff.columns.size(); ++i) {
    ColumnTarget target;
    target.source = 0;
    target.physical_column = "col" + std::to_string(i + 1);
    target.physical_type = TypeId::kString;  // the flexible VARCHAR column
    target.logical_type = eff.columns[i].type;
    mapping->columns[IdentLower(eff.columns[i].name)] = target;
    mapping->column_order.push_back(eff.columns[i].name);
  }
  return mapping;
}

}  // namespace mapping
}  // namespace mtdb
