#ifndef MTDB_CORE_BASIC_LAYOUT_H_
#define MTDB_CORE_BASIC_LAYOUT_H_

#include <memory>
#include <string>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// §3 "Basic Layout": add a Tenant column to each base table and share
/// the tables among all tenants. Best consolidation, no extensibility —
/// EnableExtension fails by design.
class BasicLayout final : public SchemaMapping {
 public:
  BasicLayout(Database* db, const AppSchema* app) : SchemaMapping(db, app) {}

  std::string name() const override { return "basic"; }

  Status Bootstrap() override;

 protected:
  Status EnableExtensionImpl(TenantId tenant, const std::string& ext) override;
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
  Result<int64_t> GenericUpdate(TenantId tenant, const sql::UpdateStmt& stmt,
                                const std::vector<Value>& params) override;
  Result<int64_t> GenericDelete(TenantId tenant, const sql::DeleteStmt& stmt,
                                const std::vector<Value>& params) override;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_BASIC_LAYOUT_H_
