#ifndef MTDB_STORAGE_PAGE_STORE_H_
#define MTDB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "storage/page.h"

namespace mtdb {

/// Persistent-tier I/O counters. Every buffer-pool miss shows up here as
/// a physical read; Figures 10–12 are driven by these and the logical
/// counters in BufferPoolStats.
struct PageStoreStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t allocations = 0;
};

/// The "disk": an in-memory array of page images standing in for the
/// paper's NFS appliance. Reads/writes copy whole page images so the
/// buffer pool above it behaves exactly like a cache, and an optional
/// per-I/O latency models cold-cache experiments.
///
/// Thread-safety: all methods are safe to call from concurrent sessions.
/// An internal mutex guards the page array and counters; the simulated
/// device latency is charged as a *blocking* wait outside that mutex, so
/// concurrent sessions overlap their I/O stalls exactly like synchronous
/// reads against a real shared appliance.
class PageStore {
 public:
  explicit PageStore(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Allocates a new zeroed page of `type`, returning its id.
  PageId Allocate(PageType type);

  /// Releases a page (its id may be reused).
  void Deallocate(PageId id);

  /// Copies the stored image into `out` (sized page_size). Counts a
  /// physical read and applies the simulated latency.
  void Read(PageId id, char* out);

  /// Copies `in` into the stored image. Counts a physical write.
  void Write(PageId id, const char* in);

  PageType TypeOf(PageId id) const;
  bool IsAllocated(PageId id) const;

  size_t allocated_pages() const;

  PageStoreStats stats() const;
  void ResetStats();

  /// Simulated device latency charged per physical read, in nanoseconds
  /// the issuing thread blocks. Defaults to 0 (counter-only model).
  /// Atomic so benchmarks can load data fast and then dial the latency
  /// up for the measured phase without racing in-flight reads.
  void set_read_latency_ns(uint64_t ns) {
    read_latency_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  struct StoredPage {
    PageType type = PageType::kFree;
    std::vector<char> image;
  };

  uint32_t page_size_;
  mutable std::mutex mu_;
  std::vector<StoredPage> pages_;
  std::vector<PageId> free_list_;
  PageStoreStats stats_;
  std::atomic<uint64_t> read_latency_ns_{0};
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_PAGE_STORE_H_
