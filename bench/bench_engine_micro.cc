// Google-benchmark microbenchmarks for the engine substrates: B+Tree
// point operations, key encoding, row codec, buffer pool fetch, and the
// SQL front door. These are the primitive costs underlying Figures 9-12.
#include <benchmark/benchmark.h>

#include "common/key_encoding.h"
#include "common/rng.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "index/btree.h"
#include "storage/row_codec.h"

namespace mtdb {
namespace {

void BM_KeyEncodeComposite(benchmark::State& state) {
  std::vector<Value> key{Value::Int32(17), Value::Int32(3), Value::Int32(2),
                         Value::Int64(123456)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyEncoder::EncodeKey(key));
  }
}
BENCHMARK(BM_KeyEncodeComposite);

void BM_RowCodecRoundTrip(benchmark::State& state) {
  RowCodec codec({TypeId::kInt64, TypeId::kInt32, TypeId::kString,
                  TypeId::kDate, TypeId::kDouble});
  Row row{Value::Int64(1), Value::Int32(2), Value::String("hello world"),
          Value::Date(12345), Value::Double(3.25)};
  for (auto _ : state) {
    std::string image;
    Status st = codec.Encode(row, &image);
    benchmark::DoNotOptimize(st);
    auto decoded = codec.Decode(image.data(),
                                static_cast<uint32_t>(image.size()));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RowCodecRoundTrip);

void BM_BTreeInsert(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BTree tree(&pool);
  Rng rng(1);
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = KeyEncoder::EncodeKey({Value::Int64(rng.Next() % 1000000)});
    Status st = tree.Insert(key, Rid{static_cast<PageId>(i / 100),
                                     static_cast<uint16_t>(i % 100)});
    benchmark::DoNotOptimize(st);
    ++i;
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BTree tree(&pool);
  for (int64_t i = 0; i < 100000; ++i) {
    std::string key = KeyEncoder::EncodeKey({Value::Int64(i)});
    Status st = tree.Insert(key, Rid{static_cast<PageId>(i / 100),
                                     static_cast<uint16_t>(i % 100)});
    benchmark::DoNotOptimize(st);
  }
  Rng rng(2);
  for (auto _ : state) {
    std::string key =
        KeyEncoder::EncodeKey({Value::Int64(rng.Uniform(0, 99999))});
    auto rids = tree.Lookup(key);
    benchmark::DoNotOptimize(rids);
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 64);
  Page* page = pool.NewPage(PageType::kHeap);
  PageId id = page->id();
  pool.UnpinPage(id, false);
  for (auto _ : state) {
    auto p = pool.FetchPage(id);
    benchmark::DoNotOptimize(p);
    pool.UnpinPage(id, false);
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_SqlPointQuery(benchmark::State& state) {
  Database db;
  Status st = db.Execute("CREATE TABLE t (id BIGINT, v INT)").status();
  benchmark::DoNotOptimize(st);
  st = db.Execute("CREATE UNIQUE INDEX ux ON t (id)").status();
  for (int i = 0; i < 10000; ++i) {
    st = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                    std::to_string(i * 3) + ")")
             .status();
  }
  Rng rng(3);
  for (auto _ : state) {
    auto r = db.Query("SELECT v FROM t WHERE id = ?",
                      {Value::Int64(rng.Uniform(0, 9999))});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlPointQuery);

void BM_SqlParse(benchmark::State& state) {
  Database db;
  for (auto _ : state) {
    auto r = sql::ParseSelect(
        "SELECT p.id, p.a, c.b FROM parent p, child c "
        "WHERE p.id = c.parent AND p.id = ? AND c.x > 10 ORDER BY p.a");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlParse);

}  // namespace
}  // namespace mtdb

BENCHMARK_MAIN();
