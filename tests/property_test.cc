#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/key_encoding.h"
#include "common/rng.h"
#include "core/tenant_session.h"
#include "engine/session.h"
#include "mapping_test_util.h"
#include "storage/row_codec.h"

namespace mtdb {
namespace {

// ---------------------------------------------------- row codec property

/// Random round-trip over randomized schemas: Decode(Encode(row)) == row.
class RowCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  const TypeId kTypes[] = {TypeId::kBool,   TypeId::kInt32, TypeId::kInt64,
                           TypeId::kDouble, TypeId::kDate,  TypeId::kString};
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<TypeId> schema;
    int cols = static_cast<int>(rng.Uniform(1, 24));
    for (int c = 0; c < cols; ++c) {
      schema.push_back(kTypes[rng.Uniform(0, 5)]);
    }
    RowCodec codec(schema);
    Row row;
    for (TypeId t : schema) {
      if (rng.Bernoulli(0.2)) {
        row.push_back(Value::Null(t));
        continue;
      }
      switch (t) {
        case TypeId::kBool:
          row.push_back(Value::Bool(rng.Bernoulli(0.5)));
          break;
        case TypeId::kInt32:
          row.push_back(Value::Int32(static_cast<int32_t>(
              rng.Uniform(INT32_MIN / 2, INT32_MAX / 2))));
          break;
        case TypeId::kInt64:
          row.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
          break;
        case TypeId::kDouble:
          row.push_back(Value::Double(rng.UniformDouble(-1e9, 1e9)));
          break;
        case TypeId::kDate:
          row.push_back(Value::Date(static_cast<int32_t>(rng.Uniform(0, 40000))));
          break;
        default:
          row.push_back(Value::String(rng.Word(0, 40)));
          break;
      }
    }
    std::string image;
    ASSERT_TRUE(codec.Encode(row, &image).ok());
    auto decoded =
        codec.Decode(image.data(), static_cast<uint32_t>(image.size()));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ((*decoded)[i].is_null(), row[i].is_null()) << i;
      if (!row[i].is_null()) {
        EXPECT_EQ((*decoded)[i].Compare(row[i]), 0)
            << i << " " << TypeName(schema[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// -------------------------------------------------- key encoding property

/// Encoded composite keys order exactly like componentwise Value order.
class KeyOrderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KeyOrderPropertyTest, EncodingIsOrderPreserving) {
  Rng rng(GetParam() * 77);
  auto random_value = [&]() -> Value {
    switch (rng.Uniform(0, 3)) {
      case 0:
        return Value::Int64(rng.Uniform(-1000, 1000));
      case 1:
        return Value::String(rng.Word(0, 6));
      case 2:
        return Value::Date(static_cast<int32_t>(rng.Uniform(0, 300)));
      default:
        return Value();
    }
  };
  auto compare_rows = [](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c;
    }
    return 0;
  };
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Value> a, b;
    int cols = static_cast<int>(rng.Uniform(1, 4));
    bool mixed_kinds = false;
    for (int c = 0; c < cols; ++c) {
      Value va = random_value();
      Value vb = random_value();
      // Only compare like-kinds per position (mixed numeric/string
      // ordering is defined by Value::Compare but not by the encoding).
      bool a_str = va.type() == TypeId::kString && !va.is_null();
      bool b_str = vb.type() == TypeId::kString && !vb.is_null();
      if (a_str != b_str) mixed_kinds = true;
      a.push_back(std::move(va));
      b.push_back(std::move(vb));
    }
    if (mixed_kinds) continue;
    int value_order = compare_rows(a, b);
    std::string ka = KeyEncoder::EncodeKey(a);
    std::string kb = KeyEncoder::EncodeKey(b);
    int key_order = ka.compare(kb) < 0 ? -1 : (ka == kb ? 0 : 1);
    EXPECT_EQ(value_order < 0, key_order < 0) << iter;
    EXPECT_EQ(value_order == 0, key_order == 0) << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyOrderPropertyTest,
                         ::testing::Values(1, 2, 3));

// -------------------------------------------- chunk width sweep property

/// The same logical workload over every chunk width must produce the
/// same answers — chunk width is a pure performance knob (§6.2).
class ChunkWidthSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkWidthSweepTest, WidthDoesNotChangeAnswers) {
  using namespace mapping;  // NOLINT
  AppSchema app;
  LogicalTable wide;
  wide.name = "wide";
  wide.columns.push_back({"id", TypeId::kInt64, true});
  for (int i = 0; i < 24; ++i) {
    TypeId t = i % 3 == 0 ? TypeId::kInt32
                          : (i % 3 == 1 ? TypeId::kDate : TypeId::kString);
    wide.columns.push_back({"c" + std::to_string(i), t, false});
  }
  ASSERT_TRUE(app.AddTable(std::move(wide)).ok());

  Database db;
  ChunkLayoutOptions options;
  options.shape = ChunkShape::Uniform(GetParam());
  ChunkTableLayout layout(&db, &app, options);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(layout.CreateTenant(1).ok());

  Rng rng(42);  // same seed for every width => identical logical data
  for (int64_t id = 0; id < 40; ++id) {
    Row row{Value::Int64(id)};
    for (int i = 0; i < 24; ++i) {
      switch (i % 3) {
        case 0:
          row.push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(0, 99))));
          break;
        case 1:
          row.push_back(Value::Date(static_cast<int32_t>(rng.Uniform(0, 999))));
          break;
        default:
          row.push_back(Value::String(rng.Word(2, 6)));
          break;
      }
    }
    ASSERT_TRUE(layout.InsertRow(1, "wide", row).ok());
  }

  auto count = layout.Query(1, "SELECT COUNT(*) FROM wide WHERE c0 < 50");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  auto sum = layout.Query(1, "SELECT SUM(c3), MIN(c1), MAX(c1) FROM wide");
  ASSERT_TRUE(sum.ok());
  auto point = layout.Query(1, "SELECT c2, c23 FROM wide WHERE id = 17");
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->rows.size(), 1u);

  // Reference: recompute with the same seed through a Basic layout.
  Database ref_db;
  BasicLayout ref(&ref_db, &app);
  ASSERT_TRUE(ref.Bootstrap().ok());
  ASSERT_TRUE(ref.CreateTenant(1).ok());
  Rng ref_rng(42);
  for (int64_t id = 0; id < 40; ++id) {
    Row row{Value::Int64(id)};
    for (int i = 0; i < 24; ++i) {
      switch (i % 3) {
        case 0:
          row.push_back(
              Value::Int32(static_cast<int32_t>(ref_rng.Uniform(0, 99))));
          break;
        case 1:
          row.push_back(
              Value::Date(static_cast<int32_t>(ref_rng.Uniform(0, 999))));
          break;
        default:
          row.push_back(Value::String(ref_rng.Word(2, 6)));
          break;
      }
    }
    ASSERT_TRUE(ref.InsertRow(1, "wide", row).ok());
  }
  auto ref_count = ref.Query(1, "SELECT COUNT(*) FROM wide WHERE c0 < 50");
  auto ref_sum = ref.Query(1, "SELECT SUM(c3), MIN(c1), MAX(c1) FROM wide");
  auto ref_point = ref.Query(1, "SELECT c2, c23 FROM wide WHERE id = 17");
  ASSERT_TRUE(ref_count.ok());
  ASSERT_TRUE(ref_sum.ok());
  ASSERT_TRUE(ref_point.ok());

  EXPECT_EQ(count->rows[0][0].AsInt64(), ref_count->rows[0][0].AsInt64());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sum->rows[0][i].Compare(ref_sum->rows[0][i]), 0) << i;
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(point->rows[0][i].Compare(ref_point->rows[0][i]), 0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ChunkWidthSweepTest,
                         ::testing::Values(3, 6, 15, 30, 90),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "width" + std::to_string(info.param);
                         });

// --------------------------------------------------- concurrency sanity

TEST(ConcurrencyTest, ParallelSessionsKeepCountsConsistent) {
  Database db;
  {
    Session admin = db.OpenSession();
    ASSERT_TRUE(admin.Execute("CREATE TABLE t (id BIGINT, w INT)").ok());
    ASSERT_TRUE(admin.Execute("CREATE UNIQUE INDEX ux ON t (id)").ok());
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w]() {
      Session session = db.OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        int64_t id = static_cast<int64_t>(w) * 100000 + i;
        auto st = session.Execute("INSERT INTO t VALUES (?, ?)",
                                  {Value::Int64(id), Value::Int32(w)});
        if (!st.ok()) errors.fetch_add(1);
        if (i % 10 == 0) {
          auto r = session.Query("SELECT COUNT(*) FROM t WHERE w = ?",
                                 {Value::Int32(w)});
          if (!r.ok()) errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  Session session = db.OpenSession();
  auto total = session.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->rows[0][0].AsInt64(), kThreads * kPerThread);
}

TEST(ConcurrencyTest, ParallelTenantsThroughMapping) {
  using namespace mapping;  // NOLINT
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkFoldingLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  for (TenantId t = 0; t < 4; ++t) {
    ASSERT_TRUE(layout.CreateTenant(t).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (TenantId t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      TenantSession session = layout.OpenSession(t);
      for (int i = 1; i <= 50; ++i) {
        auto st = session.Execute(
            "INSERT INTO account (aid, name) VALUES (?, ?)",
            {Value::Int64(i), Value::String("n" + std::to_string(i))});
        if (!st.ok()) errors.fetch_add(1);
      }
      auto r = session.Query("SELECT COUNT(*) FROM account");
      if (!r.ok() || r->rows[0][0].AsInt64() != 50) errors.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace mtdb
