// Reproduces Figure 12 (Test 6): "Response Time Improvements for Chunk
// Tables Compared to Vertical Partitioning". Same chunk partitioning,
// but the vertical variant keeps every (table, chunk) in its own
// physical table instead of folding into shared Chunk Tables.
//
// Folding co-locates the chunks of one logical row (they are inserted
// together into the same shared table, usually the same page), so row
// reconstruction touches far fewer cold pages; at width 90 the layouts
// are nearly identical and the extra Chunk meta column makes folding
// slightly worse (the paper's ~-10%). The deterministic physical-read
// counts expose the mechanism; wall-clock improvements follow them.
#include <cstdio>
#include <cstdlib>

#include "chunk_bench_common.h"

namespace mtdb {
namespace bench {
namespace {

int Main() {
  ChunkBenchConfig config;
  config.parents = 200;
  if (const char* env = std::getenv("MTDB_BENCH_PARENTS")) {
    config.parents = std::atoi(env);
  }
  std::printf(
      "=== Figure 12: Chunk Folding vs. vertical partitioning ===\n");

  std::vector<std::unique_ptr<Deployment>> folded, vertical;
  for (int width : config.widths) {
    auto f = MakeDeployment(config, width, /*vertical=*/false);
    auto v = MakeDeployment(config, width, /*vertical=*/true);
    if (!f.ok() || !v.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    folded.push_back(std::move(*f));
    vertical.push_back(std::move(*v));
  }
  // Charge a simulated device latency per physical (cold) page read so
  // locality differences show up in wall-clock time as well.
  for (auto& d : folded) d->db->page_store()->set_read_latency_ns(50000);
  for (auto& d : vertical) d->db->page_store()->set_read_latency_ns(50000);

  std::vector<Value> params{Value::Int64(config.parents / 2)};

  std::printf("\nCold physical page reads per Q2 execution "
              "(folded / vertical -> improvement):\n");
  std::printf("%-6s", "scale");
  for (int width : config.widths) std::printf("   width%-17d", width);
  std::printf("\n");
  for (int scale : {6, 30, 60, 90}) {
    std::printf("%-6d", scale);
    for (size_t w = 0; w < config.widths.size(); ++w) {
      auto rf = RunQuery(folded[w].get(), BuildQ2(scale), params, 4, true);
      auto rv = RunQuery(vertical[w].get(), BuildQ2(scale), params, 4, true);
      if (!rf.ok() || !rv.ok()) {
        std::fprintf(stderr, "\nquery failed: %s\n",
                     (!rf.ok() ? rf.status() : rv.status()).ToString().c_str());
        return 1;
      }
      double improvement = rv->physical_reads > 0
                               ? (1.0 - rf->physical_reads / rv->physical_reads) *
                                     100.0
                               : 0.0;
      std::printf("  %6.0f/%-6.0f %+5.1f%%", rf->physical_reads,
                  rv->physical_reads, improvement);
    }
    std::printf("\n");
  }

  std::printf("\nCold response-time improvement of folding (%%):\n");
  std::printf("%-6s", "scale");
  for (int width : config.widths) std::printf("  width%-6d", width);
  std::printf("\n");
  for (int scale : {6, 30, 60, 90}) {
    std::printf("%-6d", scale);
    for (size_t w = 0; w < config.widths.size(); ++w) {
      auto rf = RunQuery(folded[w].get(), BuildQ2(scale), params, 6, true);
      auto rv = RunQuery(vertical[w].get(), BuildQ2(scale), params, 6, true);
      if (!rf.ok() || !rv.ok()) return 1;
      double improvement =
          rv->mean_ms > 0 ? (1.0 - rf->mean_ms / rv->mean_ms) * 100.0 : 0.0;
      std::printf("  %+9.1f%%", improvement);
    }
    std::printf("\n");
  }

  std::printf("\nPhysical tables (meta-data budget consumption):\n");
  for (size_t w = 0; w < config.widths.size(); ++w) {
    std::printf("  width %-3d: folded=%zu tables (%llu KB meta), "
                "vertical=%zu tables (%llu KB meta)\n",
                config.widths[w], folded[w]->db->Stats().tables,
                static_cast<unsigned long long>(
                    folded[w]->db->Stats().metadata_bytes / 1024),
                vertical[w]->db->Stats().tables,
                static_cast<unsigned long long>(
                    vertical[w]->db->Stats().metadata_bytes / 1024));
  }
  std::printf(
      "\nExpected shape (Fig. 12): folding reads far fewer cold pages at\n"
      "widths 3-6 (>50%% improvement), converging toward ~0/slightly\n"
      "negative at width 90, while always consuming far fewer tables.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
