file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_variability.dir/bench_schema_variability.cc.o"
  "CMakeFiles/bench_schema_variability.dir/bench_schema_variability.cc.o.d"
  "bench_schema_variability"
  "bench_schema_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
