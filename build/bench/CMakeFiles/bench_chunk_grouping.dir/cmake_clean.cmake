file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_grouping.dir/bench_chunk_grouping.cc.o"
  "CMakeFiles/bench_chunk_grouping.dir/bench_chunk_grouping.cc.o.d"
  "bench_chunk_grouping"
  "bench_chunk_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
