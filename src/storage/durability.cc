#include "storage/durability.h"

#include "common/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace mtdb {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kMetaMagic = 0x4D4D4554u;  // "MMET"
// v2 appends the open-client-transaction section; v1 files (no section)
// still load.
constexpr uint32_t kMetaVersion = 2;
constexpr uint64_t kFnvOffset = 14695981039346656037ull;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}
void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// Bounds-checked sequential decoder over the meta image.
class Cursor {
 public:
  Cursor(const char* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I32(int32_t* v) { return Raw(v, 4); }
  bool Bytes(std::string* out, size_t n) {
    if (len_ - pos_ < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  bool Raw(void* v, size_t n) {
    if (len_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

Status StatusFromErrno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Durability::Durability(std::string dir, DurabilityOptions options,
                       PageStore* store, BufferPool* pool)
    : dir_(std::move(dir)), options_(options), store_(store), pool_(pool) {}

Durability::~Durability() = default;

Status Durability::MaybeCrash() {
  if (frozen()) return Status::Unavailable("durability frozen after crash");
  FaultInjector* injector = store_->fault_injector();
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kCrash)) {
    counters_.OnInjectedCrash();
    Freeze();
    return Status::Unavailable("injected crash");
  }
  return Status::OK();
}

Status Durability::AppendLocked(WalRecordType type, const std::string& payload) {
  MTDB_RETURN_IF_ERROR(MaybeCrash());  // crash site: append-begin
  uint64_t lsn = next_lsn_++;
  FaultInjector* injector = store_->fault_injector();
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kCrash)) {
    // Crash site: mid-append. Leave a genuine torn tail on disk so
    // recovery exercises checksum-based truncation, then freeze.
    counters_.OnInjectedCrash();
    Freeze();
    (void)writer_->AppendTorn(lsn, type, payload);
    return Status::Unavailable("injected crash mid-append");
  }
  Status st = writer_->Append(lsn, type, payload);
  if (!st.ok()) {
    // The record may or may not have landed; the statement's in-memory
    // effects are already applied. Freeze so no later statement can
    // commit on top of the ambiguity — recovery resolves it from disk.
    Freeze();
    return st;
  }
  uint64_t frame_bytes = kWalFrameHeaderSize + payload.size();
  counters_.OnWalAppend(frame_bytes);
  trace::OnWalBytes(frame_bytes);
  bytes_since_ckpt_.fetch_add(frame_bytes, std::memory_order_relaxed);
  return Status::OK();
}

Status Durability::CommitGroup(const PageMutationCapture& capture,
                               std::vector<WalTableMeta> table_meta,
                               const std::string* catalog_blob) {
  if (capture.empty() && catalog_blob == nullptr) return Status::OK();
  WalGroup group;
  group.ops.reserve(capture.ops.size());
  for (const PageMutationCapture::Op& op : capture.ops) {
    WalPageOp out;
    out.kind = op.kind == PageMutationCapture::Op::Kind::kAlloc
                   ? WalPageOp::Kind::kAlloc
                   : WalPageOp::Kind::kDealloc;
    out.page = op.page;
    out.type = op.type;
    out.seq = op.seq;
    group.ops.push_back(out);
  }
  std::vector<PageId> ids = capture.dirtied;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (PageId id : ids) {
    // A page allocated and freed within the statement has no after-image;
    // its alloc/dealloc ops still replay so the free list stays exact.
    if (!store_->IsAllocated(id)) continue;
    Result<Page*> page = pool_->FetchPage(id);
    if (!page.ok()) {
      // The statement already mutated this page in memory; failing to log
      // it would let an acknowledged statement vanish on recovery.
      Freeze();
      return page.status();
    }
    WalPageImage img;
    img.page = id;
    img.type = store_->TypeOf(id);
    img.image.assign((*page)->data(), store_->page_size());
    pool_->UnpinPage(id, /*dirty=*/false);
    group.images.push_back(std::move(img));
  }
  group.table_meta = std::move(table_meta);
  if (catalog_blob != nullptr) {
    group.has_catalog_blob = true;
    group.catalog_blob = *catalog_blob;
  }
  std::string payload = EncodeWalGroup(group);
  std::lock_guard<Latch> lock(mu_);
  MTDB_RETURN_IF_ERROR(AppendLocked(WalRecordType::kGroup, payload));
  counters_.OnGroupCommit();
  return Status::OK();
}

Result<uint64_t> Durability::BeginTxn() {
  txn_gate_.lock_shared();
  uint64_t txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  WalTxnRecord rec;
  rec.txn_id = txn_id;
  std::string payload = EncodeWalTxn(rec);
  std::lock_guard<Latch> lock(mu_);
  Status st = AppendLocked(WalRecordType::kTxnBegin, payload);
  if (!st.ok()) {
    txn_gate_.unlock_shared();
    return st;
  }
  counters_.OnTxnBegin();
  return txn_id;
}

Status Durability::LogHint(uint64_t txn_id, const std::string& compensation_sql) {
  WalTxnRecord rec;
  rec.txn_id = txn_id;
  rec.sql = compensation_sql;
  std::string payload = EncodeWalTxn(rec);
  std::lock_guard<Latch> lock(mu_);
  return AppendLocked(WalRecordType::kTxnHint, payload);
}

Result<uint64_t> Durability::BeginDetachedTxn() {
  uint64_t txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  WalTxnRecord rec;
  rec.txn_id = txn_id;
  std::string payload = EncodeWalTxn(rec);
  std::lock_guard<Latch> lock(mu_);
  MTDB_RETURN_IF_ERROR(AppendLocked(WalRecordType::kTxnBegin, payload));
  counters_.OnTxnBegin();
  return txn_id;
}

Status Durability::EndDetachedTxn(uint64_t txn_id) {
  WalTxnRecord rec;
  rec.txn_id = txn_id;
  std::string payload = EncodeWalTxn(rec);
  std::lock_guard<Latch> lock(mu_);
  MTDB_RETURN_IF_ERROR(AppendLocked(WalRecordType::kTxnEnd, payload));
  counters_.OnTxnEnd();
  return Status::OK();
}

Status Durability::EndTxn(uint64_t txn_id) {
  WalTxnRecord rec;
  rec.txn_id = txn_id;
  std::string payload = EncodeWalTxn(rec);
  Status st;
  {
    std::lock_guard<Latch> lock(mu_);
    st = AppendLocked(WalRecordType::kTxnEnd, payload);
  }
  if (st.ok()) counters_.OnTxnEnd();
  // The gate is released even when the end record could not be appended
  // (frozen): recovery treats the txn as open and undoes it.
  txn_gate_.unlock_shared();
  return st;
}

bool Durability::NeedsCheckpoint() const {
  return options_.checkpoint_interval_bytes > 0 && !frozen() &&
         bytes_since_ckpt_.load(std::memory_order_relaxed) >=
             options_.checkpoint_interval_bytes;
}

Status Durability::StoreMeta(const CheckpointMeta& meta) {
  std::string buf;
  PutU32(&buf, kMetaMagic);
  PutU32(&buf, kMetaVersion);
  PutU32(&buf, store_->page_size());
  PutU64(&buf, meta.ckpt_lsn);
  PutU64(&buf, meta.next_txn_id);
  PutU64(&buf, meta.pages.size());
  for (const auto& [type, sum] : meta.pages) {
    buf.push_back(static_cast<char>(type));
    PutU64(&buf, sum);
  }
  PutU64(&buf, meta.free_list.size());
  for (PageId id : meta.free_list) PutI32(&buf, id);
  PutU64(&buf, meta.catalog_blob.size());
  buf.append(meta.catalog_blob);
  PutU64(&buf, meta.open_txns.size());
  for (const OpenTxnMeta& txn : meta.open_txns) {
    PutU64(&buf, txn.txn_id);
    PutU64(&buf, txn.hints.size());
    for (const std::string& hint : txn.hints) {
      PutU64(&buf, hint.size());
      buf.append(hint);
    }
  }
  PutU64(&buf, WalChecksum(buf.data(), buf.size(), kFnvOffset));

  std::FILE* f = std::fopen(MetaTmpPath().c_str(), "wb");
  if (f == nullptr) return StatusFromErrno("open " + MetaTmpPath());
  if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    return StatusFromErrno("write " + MetaTmpPath());
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    return StatusFromErrno("flush " + MetaTmpPath());
  }
  std::fclose(f);

  // Crash site: meta written but not yet installed — recovery still sees
  // the previous checkpoint and repairs pages.db from the WAL.
  MTDB_RETURN_IF_ERROR(MaybeCrash());
  std::error_code ec;
  fs::rename(MetaTmpPath(), MetaPath(), ec);
  if (ec) {
    return Status::IOError("rename " + MetaTmpPath() + ": " + ec.message());
  }
  return Status::OK();
}

Status Durability::LoadMeta(CheckpointMeta* meta, bool* found) {
  *found = false;
  std::FILE* f = std::fopen(MetaPath().c_str(), "rb");
  if (f == nullptr) {
    // Only a missing file means "fresh database". A transient EACCES or
    // EMFILE must not silently discard the checkpoint and replay a
    // truncated WAL against an empty base.
    if (errno == ENOENT) return Status::OK();
    return StatusFromErrno("open " + MetaPath());
  }
  std::string buf;
  char chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return StatusFromErrno("read " + MetaPath());
  if (buf.size() < 8) return Status::DataLoss("checkpoint meta truncated");
  uint64_t stored_sum;
  std::memcpy(&stored_sum, buf.data() + buf.size() - 8, 8);
  if (WalChecksum(buf.data(), buf.size() - 8, kFnvOffset) != stored_sum) {
    return Status::DataLoss("checkpoint meta checksum mismatch");
  }
  Cursor cur(buf.data(), buf.size() - 8);
  uint32_t magic = 0, version = 0, page_size = 0;
  uint64_t page_count = 0;
  if (!cur.U32(&magic) || magic != kMetaMagic || !cur.U32(&version) ||
      version < 1 || version > kMetaVersion || !cur.U32(&page_size) ||
      page_size != store_->page_size() || !cur.U64(&meta->ckpt_lsn) ||
      !cur.U64(&meta->next_txn_id) || !cur.U64(&page_count)) {
    return Status::DataLoss("checkpoint meta header malformed");
  }
  meta->pages.clear();
  meta->pages.reserve(page_count);
  for (uint64_t i = 0; i < page_count; i++) {
    uint8_t type = 0;
    uint64_t sum = 0;
    if (!cur.U8(&type) || !cur.U64(&sum) ||
        type > static_cast<uint8_t>(PageType::kIndex)) {
      return Status::DataLoss("checkpoint meta page table malformed");
    }
    meta->pages.emplace_back(static_cast<PageType>(type), sum);
  }
  uint64_t free_count = 0;
  if (!cur.U64(&free_count)) {
    return Status::DataLoss("checkpoint meta free list malformed");
  }
  meta->free_list.clear();
  meta->free_list.reserve(free_count);
  for (uint64_t i = 0; i < free_count; i++) {
    int32_t id = 0;
    if (!cur.I32(&id)) {
      return Status::DataLoss("checkpoint meta free list malformed");
    }
    meta->free_list.push_back(id);
  }
  uint64_t blob_len = 0;
  if (!cur.U64(&blob_len) || !cur.Bytes(&meta->catalog_blob, blob_len)) {
    return Status::DataLoss("checkpoint meta catalog blob malformed");
  }
  meta->open_txns.clear();
  if (version >= 2) {
    uint64_t txn_count = 0;
    if (!cur.U64(&txn_count)) {
      return Status::DataLoss("checkpoint meta open-txn section malformed");
    }
    meta->open_txns.reserve(txn_count);
    for (uint64_t i = 0; i < txn_count; i++) {
      OpenTxnMeta txn;
      uint64_t hint_count = 0;
      if (!cur.U64(&txn.txn_id) || !cur.U64(&hint_count)) {
        return Status::DataLoss("checkpoint meta open-txn section malformed");
      }
      txn.hints.reserve(hint_count);
      for (uint64_t h = 0; h < hint_count; h++) {
        uint64_t len = 0;
        std::string sql;
        if (!cur.U64(&len) || !cur.Bytes(&sql, len)) {
          return Status::DataLoss("checkpoint meta open-txn hint malformed");
        }
        txn.hints.push_back(std::move(sql));
      }
      meta->open_txns.push_back(std::move(txn));
    }
  }
  if (!cur.AtEnd()) {
    return Status::DataLoss("checkpoint meta has trailing bytes");
  }
  *found = true;
  return Status::OK();
}

Status Durability::WriteCheckpoint(const std::string& catalog_blob,
                                   const std::vector<OpenTxnMeta>& open_txns) {
  MTDB_RETURN_IF_ERROR(MaybeCrash());  // crash site: checkpoint-begin
  MTDB_RETURN_IF_ERROR(pool_->FlushAll());
  std::vector<PageId> dirty = store_->DirtySinceCheckpoint();

  std::FILE* f = std::fopen(PagesPath().c_str(), "r+b");
  if (f == nullptr) f = std::fopen(PagesPath().c_str(), "w+b");
  if (f == nullptr) return StatusFromErrno("open " + PagesPath());
  const uint64_t page_size = store_->page_size();
  std::vector<char> image;
  for (PageId id : dirty) {
    PageType type;
    Status raw = store_->RawRead(id, &type, &image, nullptr);
    if (raw.code() == StatusCode::kNotFound) continue;  // freed since last
    if (!raw.ok()) {
      std::fclose(f);
      return raw;
    }
    // Crash site: mid-flush. pages.db now mixes old and new images under
    // the old meta; replay repairs every page changed since that meta.
    Status crash = MaybeCrash();
    if (!crash.ok()) {
      std::fclose(f);
      return crash;
    }
    if (std::fseek(f, static_cast<long>(static_cast<uint64_t>(id) * page_size),
                   SEEK_SET) != 0 ||
        std::fwrite(image.data(), 1, page_size, f) != page_size) {
      std::fclose(f);
      return StatusFromErrno("write " + PagesPath());
    }
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    return StatusFromErrno("flush " + PagesPath());
  }
  std::fclose(f);

  CheckpointMeta meta;
  {
    std::lock_guard<Latch> lock(mu_);
    meta.ckpt_lsn = next_lsn_ - 1;
  }
  meta.next_txn_id = next_txn_id_.load(std::memory_order_relaxed);
  size_t slots = store_->page_slots();
  meta.pages.reserve(slots);
  for (size_t i = 0; i < slots; i++) {
    PageType type;
    uint64_t sum = 0;
    Status raw =
        store_->RawRead(static_cast<PageId>(i), &type, nullptr, &sum);
    if (raw.code() == StatusCode::kNotFound) {
      meta.pages.emplace_back(PageType::kFree, 0);
    } else if (!raw.ok()) {
      return raw;
    } else {
      meta.pages.emplace_back(type, sum);
    }
  }
  meta.free_list = store_->FreeListSnapshot();
  meta.catalog_blob = catalog_blob;
  meta.open_txns = open_txns;
  MTDB_RETURN_IF_ERROR(StoreMeta(meta));

  // Crash site: meta installed, WAL not yet truncated. Replay skips every
  // record at or below ckpt_lsn, so the stale log is harmless.
  MTDB_RETURN_IF_ERROR(MaybeCrash());
  MTDB_RETURN_IF_ERROR(writer_->Truncate());
  bytes_since_ckpt_.store(0, std::memory_order_relaxed);
  store_->ClearDirty(dirty);
  counters_.OnCheckpoint();
  return Status::OK();
}

Result<RecoveredState> Durability::Recover() {
  counters_.OnRecovery();
  std::error_code ec;
  fs::create_directories(WalDir(), ec);
  if (ec) {
    return Status::IOError("create " + WalDir() + ": " + ec.message());
  }
  fs::remove(MetaTmpPath(), ec);  // leftover of a crashed checkpoint

  CheckpointMeta meta;
  bool found = false;
  MTDB_RETURN_IF_ERROR(LoadMeta(&meta, &found));

  store_->RecoverReset();
  // Checksums of the images as loaded from pages.db, for the post-replay
  // verification of pages the log did not touch.
  std::vector<uint64_t> loaded_sums(meta.pages.size(), 0);
  if (found && !meta.pages.empty()) {
    std::FILE* f = std::fopen(PagesPath().c_str(), "rb");
    if (f == nullptr) return StatusFromErrno("open " + PagesPath());
    const uint64_t page_size = store_->page_size();
    std::vector<char> image(page_size);
    for (size_t i = 0; i < meta.pages.size(); i++) {
      if (meta.pages[i].first == PageType::kFree) continue;
      if (std::fseek(f, static_cast<long>(i * page_size), SEEK_SET) != 0 ||
          std::fread(image.data(), 1, page_size, f) != page_size) {
        std::fclose(f);
        return Status::DataLoss("pages.db truncated at page " +
                                std::to_string(i));
      }
      loaded_sums[i] = PageStore::Checksum(image.data(), page_size);
      Status st = store_->RecoverInstall(static_cast<PageId>(i),
                                         meta.pages[i].first, image.data());
      if (!st.ok()) {
        std::fclose(f);
        return st;
      }
    }
    std::fclose(f);
  }
  store_->RecoverSetFreeList(meta.free_list);

  WalReader reader(WalDir());
  MTDB_ASSIGN_OR_RETURN(WalReader::ScanResult scan, reader.ReadAll());
  for (uint64_t i = 0; i < scan.truncated_tails; i++) {
    counters_.OnTruncatedTail();
  }

  RecoveredState state;
  state.found_checkpoint = found;
  state.catalog_blob = meta.catalog_blob;
  std::map<int32_t, WalTableMeta> overrides;
  std::map<uint64_t, std::vector<RecoveredTxnHint>> open_txns;
  // Client transactions open at the last checkpoint: their WAL records
  // were truncated, so their hints come from the meta file. Pseudo-lsns
  // 1..k keep within-txn order and sort before every surviving log
  // record: each hint once occupied a real lsn <= ckpt_lsn, so
  // k <= ckpt_lsn < the lsn of anything still in the log. A kTxnEnd
  // surviving in the log (commit after the checkpoint) closes the
  // meta-seeded entry exactly like a log-seeded one.
  uint64_t pseudo_lsn = 0;
  for (const OpenTxnMeta& txn : meta.open_txns) {
    auto& list = open_txns[txn.txn_id];
    for (const std::string& sql : txn.hints) {
      list.push_back({++pseudo_lsn, txn.txn_id, sql});
    }
  }
  std::unordered_set<PageId> touched;
  // Alloc/dealloc order at the store is a global total order, but group
  // append order only follows latch order per table: concurrent
  // statements on different tables can allocate in one order and reach
  // the log in the other. The scan therefore just *collects* every
  // group's ops (replayed afterwards sorted by their store-assigned
  // sequence numbers) and, per page, the last after-image — per-page
  // image order does follow scan order, because a page changes owner
  // only through a dealloc/alloc pair and the old owner's images are
  // fully appended before the new owner can even obtain the id.
  std::vector<WalPageOp> page_ops;
  std::unordered_map<PageId, WalPageImage> last_images;
  uint64_t max_op_seq = 0;
  uint64_t max_lsn = meta.ckpt_lsn;
  uint64_t max_txn = 0;
  for (WalRecord& rec : scan.records) {
    max_lsn = std::max(max_lsn, rec.lsn);
    switch (rec.type) {
      case WalRecordType::kGroup: {
        if (rec.lsn <= meta.ckpt_lsn) break;  // covered by the checkpoint
        MTDB_ASSIGN_OR_RETURN(WalGroup group, DecodeWalGroup(rec.payload));
        for (const WalPageOp& op : group.ops) {
          max_op_seq = std::max(max_op_seq, op.seq);
          touched.insert(op.page);
          page_ops.push_back(op);
        }
        for (WalPageImage& img : group.images) {
          if (img.image.size() != store_->page_size()) {
            return Status::DataLoss("replay image size mismatch on page " +
                                    std::to_string(img.page));
          }
          touched.insert(img.page);
          last_images[img.page] = std::move(img);
        }
        if (group.has_catalog_blob) {
          // DDL group: its snapshot supersedes everything recorded so far.
          state.catalog_blob = std::move(group.catalog_blob);
          overrides.clear();
        }
        for (WalTableMeta& tm : group.table_meta) {
          overrides[tm.table_id] = std::move(tm);
        }
        counters_.OnReplayedGroup();
        state.replayed_groups++;
        break;
      }
      case WalRecordType::kTxnBegin: {
        // Txn records at or below ckpt_lsn are already accounted for by
        // the checkpoint (closed txns are resolved; open ones travel in
        // meta.open_txns). Replaying them would double-count hints when
        // a crash lands between meta install and WAL truncation.
        if (rec.lsn <= meta.ckpt_lsn) break;
        MTDB_ASSIGN_OR_RETURN(WalTxnRecord txn, DecodeWalTxn(rec.payload));
        max_txn = std::max(max_txn, txn.txn_id);
        open_txns[txn.txn_id];
        break;
      }
      case WalRecordType::kTxnHint: {
        if (rec.lsn <= meta.ckpt_lsn) break;
        MTDB_ASSIGN_OR_RETURN(WalTxnRecord txn, DecodeWalTxn(rec.payload));
        max_txn = std::max(max_txn, txn.txn_id);
        open_txns[txn.txn_id].push_back({rec.lsn, txn.txn_id, txn.sql});
        break;
      }
      case WalRecordType::kTxnEnd: {
        if (rec.lsn <= meta.ckpt_lsn) break;
        MTDB_ASSIGN_OR_RETURN(WalTxnRecord txn, DecodeWalTxn(rec.payload));
        max_txn = std::max(max_txn, txn.txn_id);
        open_txns.erase(txn.txn_id);
        break;
      }
    }
  }

  // Replay the page ops in true allocation order, each directed at
  // exactly the recorded page id. Id-directed replay also tolerates
  // holes: a logged op whose in-flight neighbour statement froze before
  // reaching the log still lands on the recorded page, and slots such
  // unlogged statements had claimed return to the free list.
  std::sort(page_ops.begin(), page_ops.end(),
            [](const WalPageOp& a, const WalPageOp& b) {
              return a.seq < b.seq;
            });
  for (const WalPageOp& op : page_ops) {
    if (op.kind == WalPageOp::Kind::kAlloc) {
      MTDB_RETURN_IF_ERROR(store_->RecoverAlloc(op.page, op.type));
    } else {
      MTDB_RETURN_IF_ERROR(store_->RecoverDealloc(op.page));
    }
  }
  // A recovered page's content is its last logged after-image. A page
  // whose last op left it free is skipped — installing the image would
  // resurrect it — and if it was later re-allocated, the new owner's
  // group is guaranteed to carry a fresher image (an allocation always
  // dirties the page), so last-image-wins is exact.
  for (auto& [page, img] : last_images) {
    if (!store_->IsAllocated(page)) continue;
    MTDB_RETURN_IF_ERROR(store_->RecoverInstall(
        page, img.type, img.image.data(), /*mark_dirty=*/true));
  }
  store_->RecoverSetOpSeq(max_op_seq);

  // Pages the log never touched must still match the images the
  // checkpoint intended to store; a mismatch means pages.db corruption
  // outside the window the WAL can repair.
  for (size_t i = 0; i < meta.pages.size(); i++) {
    if (meta.pages[i].first == PageType::kFree) continue;
    if (touched.count(static_cast<PageId>(i)) != 0) continue;
    if (loaded_sums[i] != meta.pages[i].second) {
      return Status::DataLoss("checkpoint image corrupt for page " +
                              std::to_string(i));
    }
  }

  for (auto& [txn_id, hints] : open_txns) {
    for (RecoveredTxnHint& hint : hints) {
      state.open_hints.push_back(std::move(hint));
    }
  }
  std::sort(state.open_hints.begin(), state.open_hints.end(),
            [](const RecoveredTxnHint& a, const RecoveredTxnHint& b) {
              return a.lsn < b.lsn;
            });
  state.table_overrides.reserve(overrides.size());
  for (auto& [table_id, tm] : overrides) {
    state.table_overrides.push_back(std::move(tm));
  }
  state.next_txn_id = std::max(meta.next_txn_id, max_txn + 1);

  {
    std::lock_guard<Latch> lock(mu_);
    next_lsn_ = max_lsn + 1;
  }
  next_txn_id_.store(state.next_txn_id, std::memory_order_relaxed);
  bytes_since_ckpt_.store(0, std::memory_order_relaxed);
  writer_ = std::make_unique<WalWriter>(WalDir(), options_.wal_segment_bytes);
  MTDB_RETURN_IF_ERROR(writer_->Open());
  return state;
}

}  // namespace mtdb
