#ifndef MTDB_STORAGE_DURABILITY_H_
#define MTDB_STORAGE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace mtdb {

struct DurabilityOptions {
  uint64_t wal_segment_bytes = 4 * 1024 * 1024;
  /// WAL bytes between automatic checkpoints; 0 disables auto
  /// checkpointing (explicit Database::Checkpoint() still works).
  uint64_t checkpoint_interval_bytes = 0;
};

/// A compensation hint of a logical transaction left open by a crash.
struct RecoveredTxnHint {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  std::string sql;
};

/// A client transaction still open at checkpoint time. Checkpoints must
/// not lose the undo information of open transactions when they truncate
/// the WAL, so the accumulated compensation hints travel in the meta
/// file (v2) and are re-seeded into replay on recovery.
struct OpenTxnMeta {
  uint64_t txn_id = 0;
  std::vector<std::string> hints;  // compensation SQL, staging order
};

/// What WAL replay hands back to the engine: the last catalog snapshot,
/// the physical-location overrides accumulated since it (heap first
/// pages, index roots), and the open logical transactions to undo.
struct RecoveredState {
  bool found_checkpoint = false;
  std::string catalog_blob;
  std::vector<WalTableMeta> table_overrides;
  std::vector<RecoveredTxnHint> open_hints;  // ascending lsn
  uint64_t next_txn_id = 1;
  uint64_t replayed_groups = 0;
};

/// The durability subsystem: a segmented physical WAL plus a page-file
/// backing store (`pages.db` + `meta`) written by fuzzy checkpoints.
///
/// Contract (DESIGN.md §10): every statement that mutated pages commits
/// exactly one checksummed group frame — after-images plus ordered
/// alloc/dealloc ops — while its table latches are still held, so
/// "statement reported success" if and only if "statement survives
/// recovery". Mapping-layer statements spanning several physical
/// statements bracket them with txn records whose hints let recovery
/// undo a half-applied logical statement.
///
/// Failure model: freeze-on-crash. An injected kCrash (or a real append
/// failure) freezes the subsystem; every later durable operation returns
/// kUnavailable, the caller tears the process down and reopens from
/// disk. In-memory state after a freeze may be ahead of disk — it is
/// never written back, so the divergence cannot leak. Files are flushed
/// with fflush: the model covers process death, not OS/power loss.
class Durability {
 public:
  Durability(std::string dir, DurabilityOptions options, PageStore* store,
             BufferPool* pool);
  ~Durability();

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  /// Loads the checkpoint into the store, replays the WAL (truncating a
  /// torn tail), verifies untouched page images against the checkpoint
  /// checksums, and opens a fresh log segment for new appends. Must be
  /// called exactly once, before any other method.
  Result<RecoveredState> Recover();

  /// Appends the statement's redo group. Called with the statement's
  /// exclusive table latches still held. An empty capture with no blob
  /// is a no-op (read-only statement).
  Status CommitGroup(const PageMutationCapture& capture,
                     std::vector<WalTableMeta> table_meta,
                     const std::string* catalog_blob);

  /// Logical transaction bracket for multi-physical-statement logical
  /// statements. BeginTxn takes the checkpoint gate shared (held until
  /// EndTxn) so a checkpoint can never truncate an open txn's records.
  Result<uint64_t> BeginTxn();
  Status LogHint(uint64_t txn_id, const std::string& compensation_sql);
  Status EndTxn(uint64_t txn_id);

  /// Detached variant of the bracket for *client* transactions that span
  /// statements: appends the begin/end record without touching the txn
  /// gate. The caller (Database's client-txn registry) owns gate
  /// discipline — it takes the gate shared only around each append, never
  /// across statements, and checkpoints instead carry open client
  /// transactions forward in the meta file.
  Result<uint64_t> BeginDetachedTxn();
  Status EndDetachedTxn(uint64_t txn_id);

  /// Writes the checkpoint: FlushAll, dirty store pages into pages.db,
  /// meta (tmp + atomic rename), then WAL truncation last. The caller
  /// must have quiesced all statements (engine DDL latch exclusive) and
  /// hold the txn gate exclusively. `open_txns` carries the undo hints of
  /// client transactions still open at this instant; truncation erases
  /// their WAL records, so the meta copy is what recovery replays.
  Status WriteCheckpoint(const std::string& catalog_blob,
                         const std::vector<OpenTxnMeta>& open_txns = {});

  /// The gate ordered above the engine's DDL latch: statements inside a
  /// logical txn hold it shared; checkpoints take it exclusively.
  SharedLatch& txn_gate() { return txn_gate_; }

  bool frozen() const { return frozen_.load(std::memory_order_acquire); }
  void Freeze() { frozen_.store(true, std::memory_order_release); }

  /// True once enough WAL has accumulated to warrant a checkpoint.
  bool NeedsCheckpoint() const;

  const std::string& dir() const { return dir_; }

 private:
  /// Counter access goes through Database::Stats() — the one composed
  /// snapshot — rather than a public per-component accessor.
  friend class Database;
  DurabilityCounters& counters() { return counters_; }
  const DurabilityCounters& counters() const { return counters_; }

  /// Consults the store's injector at FaultPoint::kCrash and freezes on
  /// fire; also rejects every durable op once frozen.
  Status MaybeCrash();
  /// Appends one frame under mu_; freezes on any append failure so a
  /// half-acknowledged statement can never be followed by another.
  Status AppendLocked(WalRecordType type, const std::string& payload);

  std::string PagesPath() const { return dir_ + "/pages.db"; }
  std::string MetaPath() const { return dir_ + "/meta"; }
  std::string MetaTmpPath() const { return dir_ + "/meta.tmp"; }
  std::string WalDir() const { return dir_ + "/wal"; }

  struct CheckpointMeta {
    uint64_t ckpt_lsn = 0;
    uint64_t next_txn_id = 1;
    std::vector<std::pair<PageType, uint64_t>> pages;  // slot -> type, sum
    std::vector<PageId> free_list;
    std::string catalog_blob;
    std::vector<OpenTxnMeta> open_txns;  // meta v2; empty in v1 files
  };
  Status LoadMeta(CheckpointMeta* meta, bool* found);
  Status StoreMeta(const CheckpointMeta& meta);

  std::string dir_;
  DurabilityOptions options_;
  PageStore* store_;
  BufferPool* pool_;
  std::unique_ptr<WalWriter> writer_;

  /// Serializes appends and lsn assignment.
  Latch mu_{LatchRank::kWal, "wal-append"};
  uint64_t next_lsn_ = 1;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> bytes_since_ckpt_{0};
  std::atomic<bool> frozen_{false};
  SharedLatch txn_gate_{LatchRank::kTxnGate, "txn-gate"};
  DurabilityCounters counters_;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_DURABILITY_H_
