
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basic_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/basic_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/basic_layout.cc.o.d"
  "/root/repo/src/core/chunk_folding_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/chunk_folding_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/chunk_folding_layout.cc.o.d"
  "/root/repo/src/core/chunk_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/chunk_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/chunk_layout.cc.o.d"
  "/root/repo/src/core/chunk_partitioner.cc" "src/core/CMakeFiles/mtdb_core.dir/chunk_partitioner.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/chunk_partitioner.cc.o.d"
  "/root/repo/src/core/extension_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/extension_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/extension_layout.cc.o.d"
  "/root/repo/src/core/heat.cc" "src/core/CMakeFiles/mtdb_core.dir/heat.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/heat.cc.o.d"
  "/root/repo/src/core/layout.cc" "src/core/CMakeFiles/mtdb_core.dir/layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/layout.cc.o.d"
  "/root/repo/src/core/logical_schema.cc" "src/core/CMakeFiles/mtdb_core.dir/logical_schema.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/logical_schema.cc.o.d"
  "/root/repo/src/core/migrator.cc" "src/core/CMakeFiles/mtdb_core.dir/migrator.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/migrator.cc.o.d"
  "/root/repo/src/core/pivot_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/pivot_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/pivot_layout.cc.o.d"
  "/root/repo/src/core/private_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/private_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/private_layout.cc.o.d"
  "/root/repo/src/core/transformer.cc" "src/core/CMakeFiles/mtdb_core.dir/transformer.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/transformer.cc.o.d"
  "/root/repo/src/core/universal_layout.cc" "src/core/CMakeFiles/mtdb_core.dir/universal_layout.cc.o" "gcc" "src/core/CMakeFiles/mtdb_core.dir/universal_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/mtdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mtdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mtdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/mtdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mtdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mtdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
