#include "engine/session.h"

#include "sql/ast_util.h"
#include "sql/parser.h"

namespace mtdb {

namespace {

bool IsDdl(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kDropIndex:
      return true;
    default:
      return false;
  }
}

// Failures after which the transaction cannot make progress and the
// session aborts it on the spot (as opposed to ordinary statement
// failures, which poison it and wait for the client's ROLLBACK):
// deadline expiry, admission rejection, breaker-open quarantine.
bool AbortsTransaction(StatusCode code) {
  // kAborted = deadlock victim: the bracket must roll back and release
  // its lock set immediately so the cycle partner can proceed.
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable ||
         code == StatusCode::kAborted;
}

}  // namespace

Session::Session(Database* db) : db_(db) {
  if (trace::TracingForced()) EnableTracing();
}

Status Session::Begin() {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  if (txn_ != nullptr) {
    return Status::FailedPrecondition("transaction already open");
  }
  auto ctx = std::make_unique<txn::TransactionContext>(db_, kEngineTenant);
  MTDB_RETURN_IF_ERROR(ctx->Begin());
  txn_ = std::move(ctx);
  if (tracer_ != nullptr) tracer_->BeginTransaction(kEngineTenant, "engine");
  return Status::OK();
}

Status Session::Commit() {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  if (txn_ == nullptr) {
    return Status::FailedPrecondition("no transaction open");
  }
  Status st = txn_->Commit();
  if (st.code() == StatusCode::kFailedPrecondition) {
    // Poisoned or aborted: the transaction stays open until the client
    // acknowledges with ROLLBACK.
    return st;
  }
  // Committed — or the end record could not be appended, in which case
  // the commit is not durable and recovery will undo it; either way the
  // bracket is closed and the context is spent.
  txn_.reset();
  if (tracer_ != nullptr) tracer_->EndTransaction(st.ok());
  return st;
}

Status Session::Rollback() {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  if (txn_ == nullptr) {
    return Status::FailedPrecondition("no transaction open");
  }
  Status st = Status::OK();
  // An aborted transaction was already rolled back by the session;
  // this ROLLBACK just acknowledges it.
  if (txn_->open()) st = txn_->Rollback();
  txn_.reset();
  if (tracer_ != nullptr) tracer_->EndTransaction(false);
  return st;
}

void Session::EnableTracing(bool on) {
  if (tracer_ == nullptr && db_ != nullptr) {
    tracer_ =
        std::make_unique<trace::StatementTracer>(db_->metrics_registry());
  }
  if (tracer_ != nullptr) tracer_->set_enabled(on);
}

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const Params& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const Params& params) {
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const Params& params) {
  return ExecuteParsed(prepared.statement(), params);
}

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, params, deadline);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  return ExecuteParsed(stmt, params, deadline);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  return ExecuteParsed(prepared.statement(), params, deadline);
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const Params& params,
                                   deadline::Deadline deadline) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params, deadline));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) const {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return PreparedStatement(std::move(stmt));
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const Params& params) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Status Session::InsertRow(const std::string& table, const Row& row) {
  sql::Statement stmt;
  stmt.kind = sql::StatementKind::kInsert;
  stmt.insert = std::make_unique<sql::InsertStmt>();
  stmt.insert->table = table;
  std::vector<sql::ParsedExprPtr> values;
  values.reserve(row.size());
  for (const Value& v : row) values.push_back(sql::MakeLiteral(v));
  stmt.insert->rows.push_back(std::move(values));
  MTDB_ASSIGN_OR_RETURN(StatementResult res, ExecuteParsed(stmt, {}));
  (void)res;
  return Status::OK();
}

Result<StatementResult> Session::ExecuteParsed(const sql::Statement& stmt,
                                               const Params& params,
                                               deadline::Deadline deadline) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  statements_++;
  // Transaction control bypasses admission and deadlines: BEGIN holds
  // no resources, and COMMIT/ROLLBACK must stay executable under
  // overload so a throttled tenant can always let go of its bracket.
  switch (stmt.kind) {
    case sql::StatementKind::kBegin:
      MTDB_RETURN_IF_ERROR(Begin());
      return StatementResult(int64_t{0});
    case sql::StatementKind::kCommit:
      MTDB_RETURN_IF_ERROR(Commit());
      return StatementResult(int64_t{0});
    case sql::StatementKind::kRollback:
      MTDB_RETURN_IF_ERROR(Rollback());
      return StatementResult(int64_t{0});
    default:
      break;
  }
  // An explicit deadline shadows any ambient one for this statement; an
  // inactive argument re-installs the ambient deadline (no-op).
  deadline::Scope scope(deadline.active ? deadline : deadline::Current());
  Result<StatementResult> res = txn_ != nullptr ? ExecuteInTxn(stmt, params)
                                                : ExecuteAdmitted(stmt, params);
  if (!res.ok() && res.status().code() == StatusCode::kDeadlineExceeded) {
    db_->metrics_registry()->GetCounter("deadline.exceeded")->Add(1);
  }
  return res;
}

Result<StatementResult> Session::ExecuteInTxn(const sql::Statement& stmt,
                                              const Params& params) {
  switch (txn_->state()) {
    case txn::TransactionContext::State::kActive:
      break;
    case txn::TransactionContext::State::kPoisoned:
      return Status::FailedPrecondition(
          "transaction is poisoned by a failed statement; ROLLBACK it");
    case txn::TransactionContext::State::kAborted:
      return Status::FailedPrecondition(
          "transaction was aborted; ROLLBACK to acknowledge");
  }
  if (IsDdl(stmt.kind)) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  // The Scope makes the context visible to the statement pipeline (undo
  // binding + engine compensation staging). It must NOT cover the
  // rollback below: compensation replay goes through the same SQL front
  // door and must not re-enter the staging paths.
  Result<StatementResult> res = [&] {
    txn::TransactionContext::Scope in_txn(txn_.get());
    return ExecuteAdmitted(stmt, params);
  }();
  if (!res.ok()) {
    if (AbortsTransaction(res.status().code())) {
      (void)txn_->Rollback(/*is_auto=*/true);
      txn_->MarkAborted();
    } else {
      txn_->Poison();
    }
  }
  return res;
}

Result<StatementResult> Session::ExecuteAdmitted(const sql::Statement& stmt,
                                                 const Params& params) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    AdmissionTicket ticket;
    MTDB_RETURN_IF_ERROR(db_->admission()->Admit(
        kEngineTenant, deadline::Current(), &ticket));
    return db_->RunStatement(stmt, params);
  }
  tracer_->BeginStatement(/*tenant=*/-1, "engine", sql::KindLabel(stmt.kind));
  Result<StatementResult> res = [&]() -> Result<StatementResult> {
    trace::TracerScope scope(tracer_.get());
    AdmissionTicket ticket;
    {
      trace::SpanScope admit("admit", "engine");
      MTDB_RETURN_IF_ERROR(db_->admission()->Admit(
          kEngineTenant, deadline::Current(), &ticket));
    }
    return db_->RunStatement(stmt, params);
  }();
  tracer_->EndStatement(res.ok());
  return res;
}

}  // namespace mtdb
