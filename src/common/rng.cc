#include "common/rng.h"

namespace mtdb {

std::string Rng::Word(int min_len, int max_len) {
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace mtdb
