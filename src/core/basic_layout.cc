#include "core/basic_layout.h"

#include "engine/lock_manager.h"

namespace mtdb {
namespace mapping {

Status BasicLayout::Bootstrap() {
  for (const LogicalTable& t : app_->tables()) {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    for (const LogicalColumn& c : t.columns) {
      schema.AddColumn(Column{c.name, c.type, false});
    }
    MTDB_RETURN_IF_ERROR(db_->CreateTable(t.name, std::move(schema)));
    // Unique compound index on (tenant, entity id): first logical column
    // is the entity id by convention (cf. §4.1's CRM schema).
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        t.name, "ux_" + IdentLower(t.name) + "_tenant_id",
        {"tenant", t.columns[0].name}, /*unique=*/true));
    for (const LogicalColumn& c : t.columns) {
      if (c.indexed) {
        MTDB_RETURN_IF_ERROR(db_->CreateIndex(
            t.name, "ix_" + IdentLower(t.name) + "_" + IdentLower(c.name),
            {"tenant", c.name}, /*unique=*/false));
      }
    }
  }
  return Status::OK();
}

Status BasicLayout::EnableExtensionImpl(TenantId, const std::string& ext) {
  return Status::NotImplemented(
      "the Basic Layout shares tables among tenants and cannot represent "
      "extension " +
      ext + " (see §3: 'very good consolidation but no extensibility')");
}

Result<std::unique_ptr<TableMapping>> BasicLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  const LogicalTable* t = app_->FindTable(table);
  if (t == nullptr) return Status::NotFound("no logical table: " + table);
  auto mapping = std::make_unique<TableMapping>();
  PhysicalSource source;
  source.physical_table = t->name;
  source.partition.emplace_back("tenant", Value::Int32(tenant));
  source.row_column.clear();  // rows are addressed by entity columns
  mapping->sources.push_back(std::move(source));
  for (const LogicalColumn& c : t->columns) {
    ColumnTarget target;
    target.source = 0;
    target.physical_column = c.name;
    target.physical_type = c.type;
    target.logical_type = c.type;
    mapping->columns[IdentLower(c.name)] = target;
    mapping->column_order.push_back(c.name);
  }
  return mapping;
}

namespace {

/// tenant = <id> conjunct for direct DML pass-through.
sql::ParsedExprPtr TenantConjunct(TenantId tenant) {
  return sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "tenant"),
                         sql::MakeLiteral(Value::Int32(tenant)));
}

}  // namespace

Result<int64_t> BasicLayout::GenericUpdate(TenantId tenant,
                                           const sql::UpdateStmt& stmt,
                                           const std::vector<Value>& params) {
  sql::Statement phys;
  phys.kind = sql::StatementKind::kUpdate;
  phys.update = std::make_unique<sql::UpdateStmt>();
  phys.update->table = stmt.table;
  for (const auto& [col, expr] : stmt.assignments) {
    phys.update->assignments.emplace_back(col, expr->Clone());
  }
  phys.update->where = sql::AndTogether(
      TenantConjunct(tenant),
      stmt.where == nullptr ? nullptr : stmt.where->Clone());
  NotifyStatement(tenant, phys);
  if (Explaining()) return 0;
  // §15: pass-through DML has no Phase (a) row set, so the whole-table
  // X fallback serializes this tenant's logical writers up front; the
  // physical statement then runs after the winner commits and sees its
  // post-commit image by construction.
  if (lock::StatementLockContext* locks =
          lock::StatementLockContext::Current();
      locks != nullptr && locks->enabled()) {
    MTDB_RETURN_IF_ERROR(
        locks->LockTable(IdentLower(stmt.table), lock::LockMode::kX));
  }
  stats_.physical_statements++;
  return db_->ExecuteAst(phys, params);
}

Result<int64_t> BasicLayout::GenericDelete(TenantId tenant,
                                           const sql::DeleteStmt& stmt,
                                           const std::vector<Value>& params) {
  sql::Statement phys;
  phys.kind = sql::StatementKind::kDelete;
  phys.del = std::make_unique<sql::DeleteStmt>();
  phys.del->table = stmt.table;
  phys.del->where = sql::AndTogether(
      TenantConjunct(tenant),
      stmt.where == nullptr ? nullptr : stmt.where->Clone());
  NotifyStatement(tenant, phys);
  if (Explaining()) return 0;
  // §15: pass-through DML has no Phase (a) row set, so the whole-table
  // X fallback serializes this tenant's logical writers up front; the
  // physical statement then runs after the winner commits and sees its
  // post-commit image by construction.
  if (lock::StatementLockContext* locks =
          lock::StatementLockContext::Current();
      locks != nullptr && locks->enabled()) {
    MTDB_RETURN_IF_ERROR(
        locks->LockTable(IdentLower(stmt.table), lock::LockMode::kX));
  }
  stats_.physical_statements++;
  return db_->ExecuteAst(phys, params);
}

}  // namespace mapping
}  // namespace mtdb
