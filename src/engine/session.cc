#include "engine/session.h"

#include "sql/ast_util.h"
#include "sql/parser.h"

namespace mtdb {

Session::Session(Database* db) : db_(db) {
  if (trace::TracingForced()) EnableTracing();
}

void Session::EnableTracing(bool on) {
  if (tracer_ == nullptr && db_ != nullptr) {
    tracer_ =
        std::make_unique<trace::StatementTracer>(db_->metrics_registry());
  }
  if (tracer_ != nullptr) tracer_->set_enabled(on);
}

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const Params& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const Params& params) {
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const Params& params) {
  return ExecuteParsed(prepared.statement(), params);
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) const {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return PreparedStatement(std::move(stmt));
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const Params& params) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Status Session::InsertRow(const std::string& table, const Row& row) {
  sql::Statement stmt;
  stmt.kind = sql::StatementKind::kInsert;
  stmt.insert = std::make_unique<sql::InsertStmt>();
  stmt.insert->table = table;
  std::vector<sql::ParsedExprPtr> values;
  values.reserve(row.size());
  for (const Value& v : row) values.push_back(sql::MakeLiteral(v));
  stmt.insert->rows.push_back(std::move(values));
  MTDB_ASSIGN_OR_RETURN(StatementResult res, ExecuteParsed(stmt, {}));
  (void)res;
  return Status::OK();
}

Result<StatementResult> Session::ExecuteParsed(const sql::Statement& stmt,
                                               const Params& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  statements_++;
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return db_->RunStatement(stmt, params);
  }
  tracer_->BeginStatement(/*tenant=*/-1, "engine", sql::KindLabel(stmt.kind));
  Result<StatementResult> res = [&] {
    trace::TracerScope scope(tracer_.get());
    return db_->RunStatement(stmt, params);
  }();
  tracer_->EndStatement(res.ok());
  return res;
}

}  // namespace mtdb
