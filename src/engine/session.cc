#include "engine/session.h"

#include "sql/ast_util.h"
#include "sql/parser.h"

namespace mtdb {

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const std::vector<Value>& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return Execute(stmt, params);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const std::vector<Value>& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  statements_++;
  return db_->RunStatement(stmt, params);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const std::vector<Value>& params) {
  return Execute(prepared.statement(), params);
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) const {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return PreparedStatement(std::move(stmt));
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Status Session::InsertRow(const std::string& table, const Row& row) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  statements_++;
  return db_->InsertRow(table, row);
}

}  // namespace mtdb
