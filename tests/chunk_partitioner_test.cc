#include <gtest/gtest.h>

#include <set>

#include "core/chunk_partitioner.h"

namespace mtdb {
namespace mapping {
namespace {

EffectiveTable MakeTable(std::vector<LogicalColumn> cols) {
  EffectiveTable t;
  t.name = "t";
  t.columns = std::move(cols);
  return t;
}

TEST(ChunkShapeTest, UniformSplitsWidth) {
  ChunkShape s3 = ChunkShape::Uniform(3);
  EXPECT_EQ(s3.ints, 1);
  EXPECT_EQ(s3.dates, 1);
  EXPECT_EQ(s3.strs, 1);
  EXPECT_EQ(s3.total(), 3);
  ChunkShape s90 = ChunkShape::Uniform(90);
  EXPECT_EQ(s90.total(), 90);
  ChunkShape s4 = ChunkShape::Uniform(4);
  EXPECT_EQ(s4.total(), 4);
  EXPECT_EQ(s4.ints, 2);
}

TEST(ChunkShapeTest, DataColumnNamesAndTypes) {
  ChunkShape shape{2, 1, 1, 2};
  auto cols = shape.DataColumns();
  ASSERT_EQ(cols.size(), 6u);
  EXPECT_EQ(cols[0].first, "int1");
  EXPECT_EQ(cols[0].second, TypeId::kInt64);
  EXPECT_EQ(cols[2].first, "dbl1");
  EXPECT_EQ(cols[3].first, "date1");
  EXPECT_EQ(cols[4].first, "str1");
  EXPECT_EQ(cols[5].first, "str2");
}

TEST(PartitionerTest, IndexedColumnsGetOwnIndexedChunks) {
  auto t = MakeTable({{"id", TypeId::kInt64, true},
                      {"name", TypeId::kString, false},
                      {"fk", TypeId::kInt64, true}});
  auto chunks = PartitionIntoChunks(t, ChunkShape::Uniform(6));
  int indexed = 0, data = 0;
  for (const auto& c : chunks) {
    if (c.indexed) {
      indexed++;
      EXPECT_EQ(c.slots.size(), 1u);
    } else {
      data++;
    }
  }
  EXPECT_EQ(indexed, 2);  // id and fk
  EXPECT_EQ(data, 1);     // name
}

TEST(PartitionerTest, EveryColumnAssignedExactlyOnce) {
  std::vector<LogicalColumn> cols;
  for (int i = 0; i < 30; ++i) {
    TypeId type = i % 3 == 0 ? TypeId::kInt32
                             : (i % 3 == 1 ? TypeId::kDate : TypeId::kString);
    cols.push_back({"c" + std::to_string(i), type, i == 0});
  }
  auto chunks = PartitionIntoChunks(MakeTable(cols), ChunkShape::Uniform(6));
  std::set<size_t> seen;
  for (const auto& chunk : chunks) {
    for (const auto& slot : chunk.slots) {
      EXPECT_TRUE(seen.insert(slot.logical_column).second)
          << "column assigned twice: " << slot.logical_column;
    }
  }
  EXPECT_EQ(seen.size(), cols.size());
}

TEST(PartitionerTest, ChunkIdsAreUnique) {
  std::vector<LogicalColumn> cols;
  for (int i = 0; i < 20; ++i) {
    cols.push_back({"c" + std::to_string(i), TypeId::kString, i < 2});
  }
  auto chunks = PartitionIntoChunks(MakeTable(cols), ChunkShape::Uniform(3));
  std::set<int32_t> ids;
  for (const auto& c : chunks) {
    EXPECT_TRUE(ids.insert(c.chunk_id).second);
  }
}

TEST(PartitionerTest, NarrowShapeMakesManyChunks) {
  std::vector<LogicalColumn> cols;
  for (int i = 0; i < 30; ++i) {
    TypeId type = i % 3 == 0 ? TypeId::kInt32
                             : (i % 3 == 1 ? TypeId::kDate : TypeId::kString);
    cols.push_back({"c" + std::to_string(i), type, false});
  }
  auto narrow = PartitionIntoChunks(MakeTable(cols), ChunkShape::Uniform(3));
  auto wide = PartitionIntoChunks(MakeTable(cols), ChunkShape::Uniform(30));
  EXPECT_EQ(narrow.size(), 10u);  // 30 columns / 3 per chunk
  EXPECT_EQ(wide.size(), 1u);
}

TEST(PartitionerTest, ShapeCapacityRespectedPerClass) {
  std::vector<LogicalColumn> cols;
  for (int i = 0; i < 10; ++i) {
    cols.push_back({"s" + std::to_string(i), TypeId::kString, false});
  }
  ChunkShape shape = ChunkShape::Uniform(6);  // 2 strs per chunk
  auto chunks = PartitionIntoChunks(MakeTable(cols), shape);
  for (const auto& c : chunks) {
    int strs = 0;
    for (const auto& s : c.slots) {
      if (s.cls == StorageClass::kStringLike) strs++;
    }
    EXPECT_LE(strs, shape.strs);
  }
  EXPECT_EQ(chunks.size(), 5u);  // 10 strings / 2 per chunk
}

TEST(PartitionerTest, DoubleColumnsFallBackToStringsWhenShapeHasNone) {
  auto t = MakeTable({{"d", TypeId::kDouble, false}});
  ChunkShape shape = ChunkShape::Uniform(3);  // no double capacity
  auto chunks = PartitionIntoChunks(t, shape);
  ASSERT_EQ(chunks.size(), 1u);
  ASSERT_EQ(chunks[0].slots.size(), 1u);
  EXPECT_EQ(chunks[0].slots[0].cls, StorageClass::kStringLike);
}

TEST(PartitionerTest, IndexedDateUsesIntSlot) {
  auto t = MakeTable({{"when", TypeId::kDate, true}});
  auto chunks = PartitionIntoChunks(t, ChunkShape::Uniform(3));
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].indexed);
  EXPECT_EQ(chunks[0].slots[0].physical_column, "int1");
}

TEST(PartitionerTest, IndexedDoubleFallsBackToDataChunk) {
  auto t = MakeTable({{"score", TypeId::kDouble, true}});
  ChunkShape shape;
  shape.doubles = 1;
  auto chunks = PartitionIntoChunks(t, shape);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_FALSE(chunks[0].indexed);
}

TEST(PartitionerTest, FirstColumnOffsetSkipsConventionalColumns) {
  auto t = MakeTable({{"base1", TypeId::kInt64, false},
                      {"base2", TypeId::kString, false},
                      {"ext1", TypeId::kString, false}});
  auto chunks = PartitionIntoChunks(t, ChunkShape::Uniform(6),
                                    /*first_column=*/2);
  ASSERT_EQ(chunks.size(), 1u);
  ASSERT_EQ(chunks[0].slots.size(), 1u);
  EXPECT_EQ(chunks[0].slots[0].logical_column, 2u);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
