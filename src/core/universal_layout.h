#ifndef MTDB_CORE_UNIVERSAL_LAYOUT_H_
#define MTDB_CORE_UNIVERSAL_LAYOUT_H_

#include <memory>
#include <string>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Figure 4(c) "Universal Table Layout": one generic table with Tenant
/// and Table meta-data columns and `width` flexible VARCHAR data columns;
/// the n-th logical column of each table maps to the n-th data column.
/// No reconstruction joins, but rows are wide, NULL-heavy, and
/// fine-grained indexing is impossible (no value indexes exist here —
/// the paper's criticism).
class UniversalTableLayout final : public SchemaMapping {
 public:
  UniversalTableLayout(Database* db, const AppSchema* app, int width = 60)
      : SchemaMapping(db, app), width_(width) {}

  std::string name() const override { return "universal"; }

  Status Bootstrap() override;

  int width() const { return width_; }
  static std::string TableName() { return "universal"; }

 protected:
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;

 private:
  int width_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_UNIVERSAL_LAYOUT_H_
