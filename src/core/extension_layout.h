#ifndef MTDB_CORE_EXTENSION_LAYOUT_H_
#define MTDB_CORE_EXTENSION_LAYOUT_H_

#include <memory>
#include <set>
#include <string>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Figure 4(b) "Extension Table Layout": shared base tables with Tenant
/// and Row meta-data columns; each extension splits off into its own
/// shared table, reconstructed by joins on Row. Better consolidation
/// than private tables, but the table count still grows with the variety
/// of extensions in use.
class ExtensionTableLayout final : public SchemaMapping {
 public:
  ExtensionTableLayout(Database* db, const AppSchema* app)
      : SchemaMapping(db, app) {}

  std::string name() const override { return "extension"; }

  Status Bootstrap() override;

  /// Physical name of the shared base table for `table`.
  static std::string BaseName(const std::string& table);
  /// Physical name of the shared table for extension `ext`.
  static std::string ExtName(const std::string& ext);

 protected:
  Status EnableExtensionImpl(TenantId tenant, const std::string& ext) override;
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
  Status RecoverDerivedState() override;

 private:
  Status EnsureExtensionTable(const ExtensionDef& def);

  std::set<std::string> provisioned_exts_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_EXTENSION_LAYOUT_H_
