#ifndef MTDB_ENGINE_SESSION_H_
#define MTDB_ENGINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/trace.h"
#include "engine/database.h"
#include "engine/txn_context.h"
#include "sql/ast.h"

namespace mtdb {

/// A parsed statement ready for repeated execution with different bind
/// parameters (parse once, execute many). Produced by Session::Prepare;
/// immutable after construction, so one PreparedStatement may be shared
/// by several sessions.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  const sql::Statement& statement() const { return stmt_; }
  bool is_select() const {
    return stmt_.kind == sql::StatementKind::kSelect;
  }

 private:
  friend class Session;
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  sql::Statement stmt_;
};

/// The engine's client front door: a lightweight per-worker handle that
/// groups the statements of one logical connection. Sessions are cheap
/// to open (Database::OpenSession), movable, and independent — any
/// number may execute concurrently; the engine latches per statement
/// only what that statement touches.
///
/// A Session itself is NOT thread-safe: it belongs to one worker thread
/// at a time, exactly like a SQL connection. Open one per thread.
///
/// Every public entry point — all Execute overloads, Query, InsertRow —
/// is a thin wrapper over the one internal ExecuteParsed path, so the
/// statement counter and the tracing/metrics hooks live in exactly one
/// place.
class Session {
 public:
  using Params = std::vector<Value>;

  Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Executes one SQL string. SELECTs yield a QueryResult; everything
  /// else yields the affected-row count (DDL reports 0); EXPLAIN
  /// MAPPING yields a MappingExplanation.
  Result<StatementResult> Execute(const std::string& sql,
                                  const Params& params = {});

  /// Executes an already-parsed statement (the mapping layer transforms
  /// ASTs directly and skips re-parsing).
  Result<StatementResult> Execute(const sql::Statement& stmt,
                                  const Params& params = {});

  /// Executes a prepared statement with fresh bind parameters.
  Result<StatementResult> Execute(const PreparedStatement& prepared,
                                  const Params& params = {});

  /// Deadline-bearing overloads: the statement is cancelled at the next
  /// cooperative check once `deadline` passes, returning
  /// kDeadlineExceeded with any partial writes rolled back. An inactive
  /// deadline (Deadline::None()) behaves exactly like the overloads
  /// above and inherits any ambient deadline already installed.
  Result<StatementResult> Execute(const std::string& sql,
                                  const Params& params,
                                  deadline::Deadline deadline);
  Result<StatementResult> Execute(const sql::Statement& stmt,
                                  const Params& params,
                                  deadline::Deadline deadline);
  Result<StatementResult> Execute(const PreparedStatement& prepared,
                                  const Params& params,
                                  deadline::Deadline deadline);

  /// Parses `sql` once for repeated execution.
  Result<PreparedStatement> Prepare(const std::string& sql) const;

  /// Client transaction control, equivalent to executing "BEGIN" /
  /// "COMMIT" / "ROLLBACK" through Execute. Between Begin() and
  /// Commit()/Rollback() every DML statement's compensations accumulate
  /// in a session transaction; Rollback() replays them newest-first and
  /// a crash before the commit record reaches the WAL undoes the whole
  /// transaction during recovery. Statements inside a transaction are
  /// still admitted individually — an open transaction holds no
  /// admission slot, no latch, and no open WAL handle between
  /// statements. A failed statement poisons the transaction (only
  /// ROLLBACK is accepted afterwards); a deadline expiry, admission
  /// rejection, or breaker trip mid-transaction rolls it back
  /// automatically, after which ROLLBACK acknowledges the abort. DDL is
  /// rejected inside a transaction with kFailedPrecondition. An open
  /// transaction is rolled back when the session is destroyed.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return txn_ != nullptr; }

  /// SELECT-only convenience: unwraps the rows alternative.
  Result<QueryResult> Query(const std::string& sql,
                            const Params& params = {});
  Result<QueryResult> Query(const std::string& sql, const Params& params,
                            deadline::Deadline deadline);

  /// Direct row insert (bulk loaders). Synthesizes a literal INSERT and
  /// routes it through the same ExecuteParsed path as everything else.
  Status InsertRow(const std::string& table, const Row& row);

  Database* database() const { return db_; }
  explicit operator bool() const { return db_ != nullptr; }

  /// Statements this session has executed (its "statement grouping"):
  /// workload drivers read this instead of keeping their own tallies.
  uint64_t statements_executed() const { return statements_; }

  /// Turns per-statement tracing on (or off) for this session. Traced
  /// statements aggregate into the database's metrics registry; the
  /// most recent span tree is kept on tracer(). Disabled sessions pay
  /// one null check per statement.
  void EnableTracing(bool on = true);
  trace::StatementTracer* tracer() { return tracer_.get(); }

 private:
  friend class Database;
  explicit Session(Database* db);

  /// The single parsed-statement path: bookkeeping, deadline install,
  /// admission, tracing, dispatch.
  Result<StatementResult> ExecuteParsed(const sql::Statement& stmt,
                                        const Params& params,
                                        deadline::Deadline deadline = {});
  /// ExecuteParsed minus deadline install/metrics: admission + dispatch.
  Result<StatementResult> ExecuteAdmitted(const sql::Statement& stmt,
                                          const Params& params);

  /// Routes kBegin/kCommit/kRollback to the methods above; gates other
  /// statements against the open transaction's state (poisoned/aborted
  /// rejection, DDL rejection) and classifies in-transaction failures.
  Result<StatementResult> ExecuteInTxn(const sql::Statement& stmt,
                                       const Params& params);

  Database* db_ = nullptr;
  uint64_t statements_ = 0;
  std::unique_ptr<trace::StatementTracer> tracer_;
  std::unique_ptr<txn::TransactionContext> txn_;
};

}  // namespace mtdb

#endif  // MTDB_ENGINE_SESSION_H_
