#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/lockdep.h"
#include "analysis/verifier.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/tenant_session.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

/// Chaos harness: a randomized logical workload runs over every layout
/// while a seeded FaultInjector throws bounded bursts of I/O errors,
/// torn writes, bit flips and latency spikes at the page store. A shadow
/// model applies exactly the statements that reported success; at every
/// checkpoint (injection paused) the layout's full logical contents must
/// equal the shadow — i.e. failed statements left no trace (statement
/// atomicity) and successful ones lost nothing (durable retries).
class ChaosTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, uint64_t>> {};

/// One tenant's expected logical table: aid -> full effective row.
using ShadowTable = std::map<int64_t, std::vector<Value>>;

std::string FormatRow(const std::vector<Value>& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  return out + ")";
}

TEST_P(ChaosTest, FaultScheduleLeavesNoPartialStatements) {
  const LayoutKind kind = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  // MTDB_CHAOS_DEADLINE_MS=<n> additionally installs an n-millisecond
  // deadline on every workload statement, so the run exercises the
  // cooperative-cancellation paths (and their rollbacks) on top of the
  // fault schedule. Statements cancelled by their deadline count as
  // failed: the shadow model already demands they leave no trace.
  const char* dl_env = std::getenv("MTDB_CHAOS_DEADLINE_MS");
  const int64_t deadline_ms = dl_env != nullptr ? std::atoll(dl_env) : 0;

  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());

  constexpr TenantId kTenants = 3;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }
  // Tenant 0 runs extended (4 logical columns) where the layout supports
  // extensibility; Basic does not — the paper's point — and stays at 2.
  const bool extended = layout->EnableExtension(0, "healthcare").ok();
  // Chaos exercises statement atomicity, not containment: push the
  // quarantine threshold out of reach so faulted tenants keep serving.
  layout->set_quarantine_threshold(1'000'000);

  FaultInjector injector(seed);
  db.page_store()->set_fault_injector(&injector);
  // Shrink the pool after setup DDL so the workload actually performs
  // physical I/O (and therefore meets the injector) instead of running
  // entirely out of cache.
  db.buffer_pool()->SetCapacity(8);

  Rng rng(seed * 7919 + 17);
  const size_t width = [&](TenantId t) {
    return t == 0 && extended ? 4u : 2u;
  }(0);
  auto columns_of = [&](TenantId t) -> size_t {
    return (t == 0 && extended) ? 4u : 2u;
  };
  (void)width;

  ShadowTable shadow[kTenants];
  int64_t next_aid = 1;

  // Re-arms one random fault point with a bounded burst. Bursts are
  // finite (max_fires) so retry loops and compensations always drain
  // them — the workload keeps converging instead of wedging.
  auto rearm = [&]() {
    // Lazy DDL inside a layout recharges the pool; pin it small again so
    // the workload keeps hitting the page store. Flushing the cache here
    // also forces write traffic (and cold re-reads) through the injector
    // even when the working set would otherwise fit in memory.
    db.buffer_pool()->SetCapacity(8);
    (void)db.buffer_pool()->EvictAll();
    injector.DisarmAll();
    FaultSpec spec;
    spec.probability = 0.1 + 0.1 * static_cast<double>(rng.Uniform(0, 4));
    spec.skip = static_cast<uint64_t>(rng.Uniform(0, 3));
    spec.max_fires = static_cast<uint64_t>(rng.Uniform(1, 6));
    FaultPoint point = FaultPoint::kPageRead;
    switch (rng.Uniform(0, 4)) {
      case 0:
        point = FaultPoint::kPageRead;
        break;
      case 1:
        point = FaultPoint::kPageWrite;
        break;
      case 2:
        point = FaultPoint::kTornWrite;
        spec.silent = false;  // detected at write time; retries repair
        break;
      case 3:
        point = FaultPoint::kBitFlip;
        break;
      default:
        point = FaultPoint::kLatencySpike;
        spec.latency_ns = 10 * 1000;
        break;
    }
    injector.Arm(point, spec);
  };

  // Full-content checkpoint with injection paused: the layout must agree
  // with the shadow model row for row, column for column.
  auto checkpoint = [&](const char* when) {
    FaultInjectorPause pause(&injector);
    // Verification reads must never be cancelled by the workload's
    // per-statement deadline.
    deadline::Scope no_deadline(deadline::Deadline::None());
    for (TenantId t = 0; t < kTenants; ++t) {
      auto r = layout->Query(t, "SELECT * FROM account ORDER BY aid");
      ASSERT_TRUE(r.ok()) << when << " tenant " << t << ": "
                          << r.status().ToString();
      ASSERT_EQ(r->rows.size(), shadow[t].size())
          << when << " tenant " << t << ": row count diverged (torn or "
          << "partial statement)";
      size_t i = 0;
      for (const auto& [aid, expected] : shadow[t]) {
        const Row& got = r->rows[i++];
        ASSERT_EQ(got.size(), expected.size()) << when << " tenant " << t;
        for (size_t c = 0; c < expected.size(); ++c) {
          ASSERT_EQ(got[c].Compare(expected[c]), 0)
              << when << " tenant " << t << " aid " << aid << " col " << c
              << ": got " << FormatRow(got) << " want "
              << FormatRow(expected);
        }
      }
    }
  };

  rearm();
  constexpr int kOps = 160;
  for (int op = 0; op < kOps; ++op) {
    if (op % 8 == 0) rearm();
    // Exercise both §6.3 Phase (b) strategies under faults.
    layout->set_dml_mode(rng.Bernoulli(0.5) ? DmlMode::kBatched
                                            : DmlMode::kPerRow);
    deadline::Scope op_deadline(deadline_ms > 0
                                    ? deadline::Deadline::AfterMillis(deadline_ms)
                                    : deadline::Deadline::None());
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
    const size_t cols = columns_of(t);
    const int action = static_cast<int>(rng.Uniform(0, 9));

    if (action < 3) {  // single-row INSERT
      int64_t aid = next_aid++;
      std::vector<Value> row{Value::Int64(aid), Value::String(rng.Word(3, 8)),
                             Value::Null(TypeId::kString),
                             Value::Null(TypeId::kInt32)};
      Result<int64_t> r =
          cols == 4
              ? layout->Execute(
                    t,
                    "INSERT INTO account (aid, name, hospital, beds) VALUES "
                    "(?, ?, ?, ?)",
                    {row[0], row[1],
                     (row[2] = Value::String(rng.Word(4, 10)), row[2]),
                     (row[3] = Value::Int32(static_cast<int32_t>(
                          rng.Uniform(1, 2000))),
                      row[3])})
              : layout->Execute(
                    t, "INSERT INTO account (aid, name) VALUES (?, ?)",
                    {row[0], row[1]});
      if (r.ok()) {
        EXPECT_EQ(*r, 1);
        row.resize(cols);
        shadow[t].emplace(aid, std::move(row));
      }
    } else if (action == 3) {  // multi-row INSERT: one logical statement
      int64_t a1 = next_aid++, a2 = next_aid++;
      std::string n1 = rng.Word(3, 8), n2 = rng.Word(3, 8);
      Result<int64_t> r = layout->Execute(
          t, "INSERT INTO account (aid, name) VALUES (?, ?), (?, ?)",
          {Value::Int64(a1), Value::String(n1), Value::Int64(a2),
           Value::String(n2)});
      if (r.ok()) {
        EXPECT_EQ(*r, 2);
        std::vector<Value> r1{Value::Int64(a1), Value::String(n1)};
        std::vector<Value> r2{Value::Int64(a2), Value::String(n2)};
        if (cols == 4) {
          r1.push_back(Value::Null(TypeId::kString));
          r1.push_back(Value::Null(TypeId::kInt32));
          r2.push_back(Value::Null(TypeId::kString));
          r2.push_back(Value::Null(TypeId::kInt32));
        }
        shadow[t].emplace(a1, std::move(r1));
        shadow[t].emplace(a2, std::move(r2));
      }
    } else if (action < 6 && !shadow[t].empty()) {  // UPDATE one row
      auto it = shadow[t].begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                           0, static_cast<int64_t>(shadow[t].size()) - 1)));
      std::string name = rng.Word(3, 8);
      Result<int64_t> r =
          layout->Execute(t, "UPDATE account SET name = ? WHERE aid = ?",
                          {Value::String(name), Value::Int64(it->first)});
      if (r.ok()) {
        EXPECT_EQ(*r, 1);
        it->second[1] = Value::String(name);
      }
    } else if (action == 6 && cols == 4 && !shadow[t].empty()) {
      // extension-column UPDATE (touches a different chunk/source)
      auto it = shadow[t].begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                           0, static_cast<int64_t>(shadow[t].size()) - 1)));
      int32_t beds = static_cast<int32_t>(rng.Uniform(1, 5000));
      Result<int64_t> r =
          layout->Execute(t, "UPDATE account SET beds = ? WHERE aid = ?",
                          {Value::Int32(beds), Value::Int64(it->first)});
      if (r.ok()) {
        EXPECT_EQ(*r, 1);
        it->second[3] = Value::Int32(beds);
      }
    } else if (action == 7 && !shadow[t].empty()) {  // DELETE one row
      auto it = shadow[t].begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                           0, static_cast<int64_t>(shadow[t].size()) - 1)));
      Result<int64_t> r =
          layout->Execute(t, "DELETE FROM account WHERE aid = ?",
                          {Value::Int64(it->first)});
      if (r.ok()) {
        EXPECT_EQ(*r, 1);
        shadow[t].erase(it);
      }
    } else {  // COUNT under fire: success must mean a correct answer
      auto r = layout->Query(t, "SELECT COUNT(*) FROM account");
      if (r.ok()) {
        ASSERT_EQ(r->rows.size(), 1u);
        EXPECT_EQ(r->rows[0][0].AsInt64(),
                  static_cast<int64_t>(shadow[t].size()))
            << "tenant " << t << ": successful read returned stale/torn data";
      }
    }

    if (op % 20 == 19) checkpoint("mid-run checkpoint");
  }

  checkpoint("final checkpoint");

  // The storage tier must have actually been under fire, or the run
  // proved nothing.
  IoFaultCountersSnapshot faults = db.Stats().io_faults;
  EXPECT_GT(faults.read_faults + faults.write_faults + faults.latency_spikes,
            0u)
      << "fault schedule never fired; chaos run was vacuous";

  // Structural audit: the mapping layer itself must come out clean.
  {
    FaultInjectorPause pause(&injector);
    analysis::Verifier verifier(layout.get());
    auto diagnostics = verifier.Run();
    ASSERT_TRUE(diagnostics.ok()) << diagnostics.status().ToString();
    EXPECT_FALSE(analysis::HasErrors(*diagnostics))
        << analysis::FormatDiagnostics(*diagnostics);
  }
  db.page_store()->set_fault_injector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndSeeds, ChaosTest,
    ::testing::Combine(
        ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                          LayoutKind::kExtension, LayoutKind::kUniversal,
                          LayoutKind::kPivot, LayoutKind::kChunk,
                          LayoutKind::kVertical, LayoutKind::kChunkFolding),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<ChaosTest::ParamType>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Transactional bursts under fire: the workload above, but a share of
/// the mutations run as multi-statement client transactions through
/// TenantSession. Statements inside the bracket take the full fault
/// schedule; a failed statement must poison the bracket (subsequent
/// statements rejected with kFailedPrecondition) and ROLLBACK must
/// restore the pre-transaction state exactly. COMMIT/ROLLBACK replay
/// runs with injection paused: a commit ack or a completed rollback is
/// an exact promise, while fault-killed brackets are the recovery
/// sweep's business, not this test's.
class ChaosTxnTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, uint64_t>> {};

TEST_P(ChaosTxnTest, TransactionalBurstsKeepTheBracketAtomic) {
  const LayoutKind kind = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());

  constexpr TenantId kTenants = 2;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }
  layout->set_quarantine_threshold(1'000'000);

  FaultInjector injector(seed);
  db.page_store()->set_fault_injector(&injector);
  db.buffer_pool()->SetCapacity(8);

  Rng rng(seed * 6131 + 5);
  ShadowTable shadow[kTenants];
  int64_t next_aid = 1;
  int poisoned_rollbacks = 0;
  int commits = 0;

  auto rearm = [&]() {
    db.buffer_pool()->SetCapacity(8);
    (void)db.buffer_pool()->EvictAll();
    injector.DisarmAll();
    FaultSpec spec;
    spec.probability = 0.1 + 0.1 * static_cast<double>(rng.Uniform(0, 4));
    spec.skip = static_cast<uint64_t>(rng.Uniform(0, 3));
    spec.max_fires = static_cast<uint64_t>(rng.Uniform(1, 6));
    injector.Arm(rng.Bernoulli(0.5) ? FaultPoint::kPageRead
                                    : FaultPoint::kPageWrite,
                 spec);
  };

  auto checkpoint = [&](const char* when) {
    FaultInjectorPause pause(&injector);
    for (TenantId t = 0; t < kTenants; ++t) {
      auto r = layout->Query(t, "SELECT * FROM account ORDER BY aid");
      ASSERT_TRUE(r.ok()) << when << " tenant " << t << ": "
                          << r.status().ToString();
      ASSERT_EQ(r->rows.size(), shadow[t].size()) << when << " tenant " << t;
      size_t i = 0;
      for (const auto& [aid, expected] : shadow[t]) {
        const Row& got = r->rows[i++];
        ASSERT_EQ(got.size(), expected.size()) << when << " tenant " << t;
        for (size_t c = 0; c < expected.size(); ++c) {
          ASSERT_EQ(got[c].Compare(expected[c]), 0)
              << when << " tenant " << t << " aid " << aid << " col " << c
              << ": got " << FormatRow(got) << " want "
              << FormatRow(expected);
        }
      }
    }
  };

  rearm();
  constexpr int kBursts = 48;
  for (int burst = 0; burst < kBursts; ++burst) {
    if (burst % 4 == 0) rearm();
    layout->set_dml_mode(rng.Bernoulli(0.5) ? DmlMode::kBatched
                                            : DmlMode::kPerRow);
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));

    if (rng.Bernoulli(0.3)) {  // autocommit statement between brackets
      int64_t aid = next_aid++;
      std::string name = rng.Word(3, 8);
      auto r = layout->Execute(
          t, "INSERT INTO account (aid, name) VALUES (?, ?)",
          {Value::Int64(aid), Value::String(name)});
      if (r.ok()) {
        shadow[t].emplace(aid, std::vector<Value>{Value::Int64(aid),
                                                  Value::String(name)});
      }
      continue;
    }

    TenantSession session = layout->OpenSession(t);
    {
      FaultInjectorPause pause(&injector);
      ASSERT_TRUE(session.Begin().ok());
    }
    ShadowTable pending = shadow[t];
    bool poisoned = false;
    const int stmts = static_cast<int>(rng.Uniform(1, 4));
    for (int s = 0; s < stmts; ++s) {
      const int action = static_cast<int>(rng.Uniform(0, 3));
      Result<int64_t> r = 0;
      if (action == 0 || pending.empty()) {
        int64_t aid = next_aid++;
        std::string name = rng.Word(3, 8);
        r = session.Execute("INSERT INTO account (aid, name) VALUES (?, ?)",
                            {Value::Int64(aid), Value::String(name)});
        if (r.ok()) {
          pending.emplace(aid, std::vector<Value>{Value::Int64(aid),
                                                  Value::String(name)});
        }
      } else if (action == 1) {
        auto it = pending.begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                             0, static_cast<int64_t>(pending.size()) - 1)));
        std::string name = rng.Word(3, 8);
        r = session.Execute("UPDATE account SET name = ? WHERE aid = ?",
                            {Value::String(name), Value::Int64(it->first)});
        if (r.ok()) it->second[1] = Value::String(name);
      } else {
        auto it = pending.begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                             0, static_cast<int64_t>(pending.size()) - 1)));
        r = session.Execute("DELETE FROM account WHERE aid = ?",
                            {Value::Int64(it->first)});
        if (r.ok()) pending.erase(it);
      }
      if (!r.ok()) {
        poisoned = true;
        // A poisoned bracket rejects everything but ROLLBACK.
        auto blocked = session.Execute("SELECT COUNT(*) FROM account");
        ASSERT_FALSE(blocked.ok());
        EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition)
            << blocked.status().ToString();
        break;
      }
    }

    FaultInjectorPause pause(&injector);
    if (poisoned) {
      Status rb = session.Rollback();
      ASSERT_TRUE(rb.ok()) << rb.ToString();
      ++poisoned_rollbacks;
      // pending discarded: the bracket left no trace.
    } else if (rng.Bernoulli(0.7)) {
      Status ct = session.Commit();
      ASSERT_TRUE(ct.ok()) << ct.ToString();
      shadow[t] = std::move(pending);
      ++commits;
    } else {
      Status rb = session.Rollback();
      ASSERT_TRUE(rb.ok()) << rb.ToString();
    }

    if (burst % 8 == 7) checkpoint("mid-run checkpoint");
  }

  checkpoint("final checkpoint");
  EXPECT_GT(commits, 0) << "no bracket committed; run was vacuous";

  IoFaultCountersSnapshot faults = db.Stats().io_faults;
  EXPECT_GT(faults.read_faults + faults.write_faults, 0u)
      << "fault schedule never fired; transactional chaos run was vacuous";
  // Poisoned brackets are fault-schedule-dependent; when at least one
  // happened the rejection path above was exercised too.
  (void)poisoned_rollbacks;

  {
    FaultInjectorPause pause(&injector);
    analysis::Verifier verifier(layout.get());
    auto diagnostics = verifier.Run();
    ASSERT_TRUE(diagnostics.ok()) << diagnostics.status().ToString();
    EXPECT_FALSE(analysis::HasErrors(*diagnostics))
        << analysis::FormatDiagnostics(*diagnostics);
  }
  db.page_store()->set_fault_injector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndSeeds, ChaosTxnTest,
    ::testing::Combine(
        ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                          LayoutKind::kExtension, LayoutKind::kUniversal,
                          LayoutKind::kPivot, LayoutKind::kChunk,
                          LayoutKind::kVertical, LayoutKind::kChunkFolding),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<ChaosTxnTest::ParamType>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Runs last in this binary: under an instrumented build
// (-DMTDB_LOCKDEP=ON) every test above must have left the lockdep
// registry empty — no latch-order or WAL-protocol violations anywhere
// in the suite's workload.
TEST(LockdepCleanliness, NoViolationsAcrossSuite) {
  if (!analysis::LockdepCompiledIn()) {
    GTEST_SKIP() << "validator not compiled in (build with MTDB_LOCKDEP)";
  }
  std::vector<analysis::Diagnostic> diagnostics =
      analysis::DrainLockdepDiagnostics();
  EXPECT_TRUE(diagnostics.empty()) << analysis::FormatDiagnostics(diagnostics);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
