#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/deadline.h"

namespace mtdb {

namespace {

// Node byte layout (offsets into the page image):
//   0  u8   is_leaf
//   2  u16  count
//   4  u16  free_end        (start of key-bytes area, grows downward)
//   8  i32  next leaf (leaf) / leftmost child (internal)
//   12 ...  entry slots, 12 bytes each: u16 key_offset, u16 key_len,
//           u64 value (rid or child page id)
// Key bytes occupy [free_end, page_size) and are written back-to-front.
constexpr uint32_t kHeaderSize = 12;
constexpr uint32_t kEntrySize = 12;

uint64_t PackRid(const Rid& rid) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(rid.page_id)) << 16) |
         rid.slot;
}

Rid UnpackRid(uint64_t v) {
  return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
}

class NodeView {
 public:
  explicit NodeView(Page* page) : page_(page) {}

  void Init(bool is_leaf) {
    std::memset(page_->data(), 0, kHeaderSize);
    page_->data()[0] = is_leaf ? 1 : 0;
    SetCount(0);
    SetFreeEnd(static_cast<uint16_t>(page_->size()));
    SetLink(kInvalidPageId);
  }

  bool is_leaf() const { return page_->data()[0] != 0; }
  uint16_t count() const { return ReadU16(2); }
  uint16_t free_end() const { return ReadU16(4); }
  PageId link() const {
    int32_t v;
    std::memcpy(&v, page_->data() + 8, 4);
    return v;
  }
  void SetCount(uint16_t c) { WriteU16(2, c); }
  void SetFreeEnd(uint16_t f) { WriteU16(4, f); }
  void SetLink(PageId id) { std::memcpy(page_->data() + 8, &id, 4); }

  std::string_view Key(int i) const {
    uint16_t off = ReadU16(kHeaderSize + i * kEntrySize);
    uint16_t len = ReadU16(kHeaderSize + i * kEntrySize + 2);
    return std::string_view(page_->data() + off, len);
  }
  uint64_t Val(int i) const {
    uint64_t v;
    std::memcpy(&v, page_->data() + kHeaderSize + i * kEntrySize + 4, 8);
    return v;
  }
  void SetVal(int i, uint64_t v) {
    std::memcpy(page_->data() + kHeaderSize + i * kEntrySize + 4, &v, 8);
  }

  uint32_t FreeBytes() const {
    uint32_t used_front = kHeaderSize + count() * kEntrySize;
    return free_end() > used_front ? free_end() - used_front : 0;
  }

  bool Fits(size_t key_len) const {
    return FreeBytes() >= kEntrySize + key_len;
  }

  /// First index whose key is >= `key` (lower bound).
  int LowerBound(std::string_view key) const {
    int lo = 0, hi = count();
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (Key(mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First index whose key is > `key` (upper bound).
  int UpperBound(std::string_view key) const {
    int lo = 0, hi = count();
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (Key(mid) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Inserts (key, val) at slot `i`, shifting later slots. Caller must
  /// ensure Fits(key.size()).
  void InsertAt(int i, std::string_view key, uint64_t val) {
    assert(Fits(key.size()));
    char* base = page_->data() + kHeaderSize;
    std::memmove(base + (i + 1) * kEntrySize, base + i * kEntrySize,
                 (count() - i) * kEntrySize);
    uint16_t new_end = static_cast<uint16_t>(free_end() - key.size());
    std::memcpy(page_->data() + new_end, key.data(), key.size());
    SetFreeEnd(new_end);
    WriteU16(kHeaderSize + i * kEntrySize, new_end);
    WriteU16(kHeaderSize + i * kEntrySize + 2, static_cast<uint16_t>(key.size()));
    std::memcpy(page_->data() + kHeaderSize + i * kEntrySize + 4, &val, 8);
    SetCount(static_cast<uint16_t>(count() + 1));
  }

  /// Removes slot `i`. Key bytes become garbage until Compact().
  void RemoveAt(int i) {
    char* base = page_->data() + kHeaderSize;
    std::memmove(base + i * kEntrySize, base + (i + 1) * kEntrySize,
                 (count() - i - 1) * kEntrySize);
    SetCount(static_cast<uint16_t>(count() - 1));
  }

  /// Rebuilds the key-bytes area, reclaiming dead space from removals.
  void Compact() {
    struct Entry {
      std::string key;
      uint64_t val;
    };
    std::vector<Entry> entries;
    entries.reserve(count());
    for (int i = 0; i < count(); ++i) {
      entries.push_back({std::string(Key(i)), Val(i)});
    }
    uint16_t end = static_cast<uint16_t>(page_->size());
    for (int i = 0; i < static_cast<int>(entries.size()); ++i) {
      end = static_cast<uint16_t>(end - entries[i].key.size());
      std::memcpy(page_->data() + end, entries[i].key.data(),
                  entries[i].key.size());
      WriteU16(kHeaderSize + i * kEntrySize, end);
      WriteU16(kHeaderSize + i * kEntrySize + 2,
               static_cast<uint16_t>(entries[i].key.size()));
      std::memcpy(page_->data() + kHeaderSize + i * kEntrySize + 4,
                  &entries[i].val, 8);
    }
    SetFreeEnd(end);
  }

 private:
  uint16_t ReadU16(uint32_t at) const {
    uint16_t v;
    std::memcpy(&v, page_->data() + at, 2);
    return v;
  }
  void WriteU16(uint32_t at, uint16_t v) {
    std::memcpy(page_->data() + at, &v, 2);
  }

  Page* page_;
};

}  // namespace

void AppendRidSuffix(const Rid& rid, std::string* key) {
  uint32_t pid = static_cast<uint32_t>(rid.page_id);
  for (int shift = 24; shift >= 0; shift -= 8) {
    key->push_back(static_cast<char>((pid >> shift) & 0xFF));
  }
  key->push_back(static_cast<char>((rid.slot >> 8) & 0xFF));
  key->push_back(static_cast<char>(rid.slot & 0xFF));
}

namespace {
constexpr size_t kRidSuffixLen = 6;
}  // namespace

BTree::BTree(BufferPool* pool) : pool_(pool) {
  Page* page = pool_->NewPage(PageType::kIndex);
  NodeView node(page);
  node.Init(/*is_leaf=*/true);
  root_ = page->id();
  all_pages_.push_back(root_);
  pool_->UnpinPage(root_, true);
}

BTree::BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {
  all_pages_.push_back(root);
}

Status BTree::RebuildFromRoot() {
  all_pages_.clear();
  entries_ = 0;
  std::vector<PageId> frontier{root_};
  while (!frontier.empty()) {
    PageId pid = frontier.back();
    frontier.pop_back();
    all_pages_.push_back(pid);
    MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    NodeView node(page);
    if (node.is_leaf()) {
      entries_ += node.count();
    } else {
      // Children: leftmost via link(), then one per separator value.
      frontier.push_back(node.link());
      for (int i = 0; i < node.count(); ++i) {
        frontier.push_back(static_cast<PageId>(node.Val(i)));
      }
    }
    pool_->UnpinPage(pid, false);
  }
  return Status::OK();
}

Result<PageId> BTree::FindLeaf(std::string_view key,
                               std::vector<std::pair<PageId, int>>* path) {
  PageId current = root_;
  while (true) {
    MTDB_RETURN_IF_ERROR(deadline::Check());
    MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    NodeView node(page);
    if (node.is_leaf()) {
      pool_->UnpinPage(current, false);
      return current;
    }
    // Internal: child index = number of separator keys <= key.
    int idx = node.UpperBound(key);
    PageId child =
        idx == 0 ? node.link() : static_cast<PageId>(node.Val(idx - 1));
    if (path != nullptr) path->push_back({current, idx});
    pool_->UnpinPage(current, false);
    current = child;
  }
}

Status BTree::Insert(std::string_view key, const Rid& rid) {
  std::string full(key);
  AppendRidSuffix(rid, &full);
  if (full.size() > 1500) {
    return Status::OutOfRange("index key too long: " +
                              std::to_string(full.size()));
  }
  std::vector<std::pair<PageId, int>> path;
  MTDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(full, &path));
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(leaf_id));
  NodeView node(page);
  if (!node.Fits(full.size())) {
    node.Compact();
  }
  if (node.Fits(full.size())) {
    int pos = node.LowerBound(full);
    node.InsertAt(pos, full, PackRid(rid));
    pool_->UnpinPage(leaf_id, true);
    entries_++;
    return Status::OK();
  }
  pool_->UnpinPage(leaf_id, true);
  MTDB_RETURN_IF_ERROR(SplitAndPropagate(path, leaf_id));
  // Retry; the tree has grown so re-descend.
  return Insert(key, rid);
}

Status BTree::SplitAndPropagate(std::vector<std::pair<PageId, int>>& path,
                                PageId left_id) {
  // Pin phase: acquire every page this split will modify before mutating
  // any of them, so an I/O fault aborts with the tree untouched.
  MTDB_ASSIGN_OR_RETURN(Page * left_page, pool_->FetchPage(left_id));
  NodeView left(left_page);
  bool leaf = left.is_leaf();
  int total = left.count();
  int split_at = total / 2;
  std::string separator(left.Key(split_at));

  Page* parent_page = nullptr;
  PageId parent_id = kInvalidPageId;
  if (!path.empty()) {
    parent_id = path.back().first;
    path.pop_back();
    auto fetched = pool_->FetchPage(parent_id);
    if (!fetched.ok()) {
      pool_->UnpinPage(left_id, false);
      return fetched.status();
    }
    parent_page = *fetched;
    NodeView parent(parent_page);
    if (!parent.Fits(separator.size())) parent.Compact();
    if (!parent.Fits(separator.size())) {
      // Parent is full. Split it first — atomically, by induction — then
      // re-descend to find left's (possibly new) parent and retry this
      // split from scratch; left has not been touched yet.
      pool_->UnpinPage(parent_id, true);  // Compact re-laid it out
      pool_->UnpinPage(left_id, false);
      MTDB_RETURN_IF_ERROR(SplitAndPropagate(path, parent_id));
      std::vector<std::pair<PageId, int>> new_path;
      MTDB_ASSIGN_OR_RETURN(PageId reached, FindLeaf(separator, &new_path));
      (void)reached;
      if (!leaf) {
        // The descent ran through `left` itself; keep only its ancestors.
        std::vector<std::pair<PageId, int>> ancestors;
        for (auto& step : new_path) {
          if (step.first == left_id) break;
          ancestors.push_back(step);
        }
        new_path = std::move(ancestors);
      }
      return SplitAndPropagate(new_path, left_id);
    }
  }

  // Mutation phase: every page is pinned and NewPage cannot fail, so no
  // error path exits between here and return.
  Page* right_page = pool_->NewPage(PageType::kIndex);
  NodeView right(right_page);
  right.Init(leaf);
  all_pages_.push_back(right_page->id());

  if (leaf) {
    for (int i = split_at; i < total; ++i) {
      right.InsertAt(i - split_at, left.Key(i), left.Val(i));
    }
    for (int i = total - 1; i >= split_at; --i) {
      left.RemoveAt(i);
    }
    right.SetLink(left.link());
    left.SetLink(right_page->id());
  } else {
    // The middle key moves up; its child becomes right's leftmost.
    right.SetLink(static_cast<PageId>(left.Val(split_at)));
    for (int i = split_at + 1; i < total; ++i) {
      right.InsertAt(i - split_at - 1, left.Key(i), left.Val(i));
    }
    for (int i = total - 1; i >= split_at; --i) {
      left.RemoveAt(i);
    }
  }
  left.Compact();
  PageId right_id = right_page->id();
  pool_->UnpinPage(right_id, true);
  pool_->UnpinPage(left_id, true);

  if (parent_page == nullptr) {
    // Splitting the root: grow a new root.
    Page* new_root = pool_->NewPage(PageType::kIndex);
    NodeView root(new_root);
    root.Init(/*is_leaf=*/false);
    root.SetLink(left_id);
    root.InsertAt(0, separator, static_cast<uint64_t>(right_id));
    root_ = new_root->id();
    all_pages_.push_back(root_);
    pool_->UnpinPage(root_, true);
    return Status::OK();
  }

  NodeView parent(parent_page);
  int pos = parent.LowerBound(separator);
  parent.InsertAt(pos, separator, static_cast<uint64_t>(right_id));
  pool_->UnpinPage(parent_id, true);
  return Status::OK();
}

Status BTree::Delete(std::string_view key, const Rid& rid) {
  std::string full(key);
  AppendRidSuffix(rid, &full);
  MTDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(full, nullptr));
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(leaf_id));
  NodeView node(page);
  int pos = node.LowerBound(full);
  if (pos < node.count() && node.Key(pos) == full) {
    node.RemoveAt(pos);
    pool_->UnpinPage(leaf_id, true);
    entries_--;
    return Status::OK();
  }
  pool_->UnpinPage(leaf_id, false);
  return Status::NotFound("key not in index");
}

Result<bool> BTree::Contains(std::string_view key) {
  std::string hi(key);
  hi.push_back('\xFF');
  MTDB_ASSIGN_OR_RETURN(Iterator it, Scan(key, hi));
  Rid rid;
  std::string found;
  while (true) {
    MTDB_ASSIGN_OR_RETURN(bool more, it.Next(&rid, &found));
    if (!more) break;
    if (found.size() == key.size() + kRidSuffixLen &&
        std::string_view(found).substr(0, key.size()) == key) {
      return true;
    }
  }
  return false;
}

Result<std::vector<Rid>> BTree::Lookup(std::string_view key) {
  std::vector<Rid> out;
  std::string hi(key);
  hi.push_back('\xFF');
  MTDB_ASSIGN_OR_RETURN(Iterator it, Scan(key, hi));
  Rid rid;
  std::string found;
  while (true) {
    MTDB_ASSIGN_OR_RETURN(bool more, it.Next(&rid, &found));
    if (!more) break;
    if (found.size() == key.size() + kRidSuffixLen &&
        std::string_view(found).substr(0, key.size()) == key) {
      out.push_back(rid);
    }
  }
  return out;
}

Result<BTree::Iterator> BTree::Scan(std::string_view lo,
                                    std::string_view hi) {
  MTDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo, nullptr));
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(leaf_id));
  NodeView node(page);
  int pos = node.LowerBound(lo);
  pool_->UnpinPage(leaf_id, false);
  return Iterator(this, leaf_id, pos, std::string(hi));
}

Result<bool> BTree::Iterator::Next(Rid* rid, std::string* key) {
  while (leaf_ != kInvalidPageId) {
    MTDB_RETURN_IF_ERROR(deadline::Check());
    MTDB_ASSIGN_OR_RETURN(Page * page, tree_->pool_->FetchPage(leaf_));
    NodeView node(page);
    if (pos_ < node.count()) {
      std::string_view k = node.Key(pos_);
      if (!hi_.empty() && k >= hi_) {
        tree_->pool_->UnpinPage(leaf_, false);
        leaf_ = kInvalidPageId;
        return false;
      }
      *rid = UnpackRid(node.Val(pos_));
      if (key != nullptr) key->assign(k);
      pos_++;
      tree_->pool_->UnpinPage(leaf_, false);
      return true;
    }
    PageId next = node.link();
    tree_->pool_->UnpinPage(leaf_, false);
    leaf_ = next;
    pos_ = 0;
  }
  return false;
}

void BTree::Free() {
  for (PageId pid : all_pages_) {
    pool_->DeletePage(pid);
  }
  all_pages_.clear();
  root_ = kInvalidPageId;
  entries_ = 0;
}

Result<int> BTree::Height() {
  int height = 1;
  PageId current = root_;
  while (true) {
    MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    NodeView node(page);
    if (node.is_leaf()) {
      pool_->UnpinPage(current, false);
      return height;
    }
    PageId child = node.link();
    pool_->UnpinPage(current, false);
    current = child;
    height++;
  }
}

}  // namespace mtdb
