#include "storage/buffer_pool.h"

#include <cassert>

namespace mtdb {

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {
  DistributeCapacity(capacity_);
}

void BufferPool::DistributeCapacity(size_t total) {
  // Every shard gets at least one frame so a pinned page can always live
  // somewhere; small budgets therefore overshoot slightly rather than
  // starve a shard.
  size_t share = total / kBufferPoolShards;
  if (share == 0) share = 1;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.capacity = share;
    EvictIfNeeded(shard);
  }
}

void BufferPool::Touch(Shard& shard, Frame* frame, PageId id) {
  if (frame->in_lru) {
    shard.lru.erase(frame->lru_it);
  }
  shard.lru.push_front(id);
  frame->lru_it = shard.lru.begin();
  frame->in_lru = true;
}

Page* BufferPool::FetchPage(PageId id) {
  Shard& shard = shards_[ShardOf(id)];
  PageType type = store_->TypeOf(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (type == PageType::kIndex) {
      shard.stats.logical_reads_index++;
    } else {
      shard.stats.logical_reads_data++;
    }
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* frame = it->second.get();
      frame->pin_count++;
      Touch(shard, frame, id);
      return &frame->page;
    }
    if (type == PageType::kIndex) {
      shard.stats.misses_index++;
    } else {
      shard.stats.misses_data++;
    }
  }
  // Miss: read through with the shard latch dropped so the device stall
  // does not serialize other traffic on this shard. Two sessions may
  // race on the same cold page; both read identical bytes (writers to
  // the page are excluded by the owning table/index latch) and the loser
  // of the insert below adopts the winner's frame.
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  store_->Read(id, frame->page.data());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.frames.try_emplace(id, std::move(frame));
  Frame* raw = it->second.get();
  if (inserted) {
    raw->pin_count = 1;
    Touch(shard, raw, id);
    EvictIfNeeded(shard);
  } else {
    raw->pin_count++;
    Touch(shard, raw, id);
  }
  return &raw->page;
}

Page* BufferPool::NewPage(PageType type) {
  PageId id = store_->Allocate(type);
  Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  frame->pin_count = 1;
  frame->dirty = true;
  Frame* raw = frame.get();
  shard.frames.emplace(id, std::move(frame));
  Touch(shard, raw, id);
  EvictIfNeeded(shard);
  return &raw->page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return;
  Frame* frame = it->second.get();
  assert(frame->pin_count > 0);
  frame->pin_count--;
  if (dirty) frame->dirty = true;
  if (frame->pin_count == 0 && shard.frames.size() > shard.capacity) {
    EvictIfNeeded(shard);
  }
}

void BufferPool::DeletePage(PageId id) {
  Shard& shard = shards_[ShardOf(id)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* frame = it->second.get();
      assert(frame->pin_count == 0);
      if (frame->in_lru) shard.lru.erase(frame->lru_it);
      shard.frames.erase(it);
    }
  }
  store_->Deallocate(id);
}

void BufferPool::FlushFrame(Frame* frame) {
  if (frame->dirty) {
    store_->Write(frame->page.id(), frame->page.data());
    frame->dirty = false;
  }
}

void BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, frame] : shard.frames) {
      FlushFrame(frame.get());
    }
  }
}

void BufferPool::EvictAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      Frame* frame = it->second.get();
      if (frame->pin_count == 0) {
        FlushFrame(frame);
        if (frame->in_lru) shard.lru.erase(frame->lru_it);
        it = shard.frames.erase(it);
        shard.stats.evictions++;
      } else {
        ++it;
      }
    }
  }
}

void BufferPool::SetCapacity(size_t frames) {
  size_t total = frames == 0 ? 1 : frames;
  {
    std::lock_guard<std::mutex> lock(capacity_mu_);
    capacity_ = total;
  }
  DistributeCapacity(total);
}

size_t BufferPool::capacity() const {
  std::lock_guard<std::mutex> lock(capacity_mu_);
  return capacity_;
}

size_t BufferPool::frames_in_use() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.frames.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.logical_reads_data += shard.stats.logical_reads_data;
    total.logical_reads_index += shard.stats.logical_reads_index;
    total.misses_data += shard.stats.misses_data;
    total.misses_index += shard.stats.misses_index;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats = BufferPoolStats();
  }
}

void BufferPool::EvictIfNeeded(Shard& shard) {
  while (shard.frames.size() > shard.capacity && !shard.lru.empty()) {
    // Scan from LRU end for an unpinned victim.
    bool evicted = false;
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      PageId victim = *it;
      auto fit = shard.frames.find(victim);
      assert(fit != shard.frames.end());
      Frame* frame = fit->second.get();
      if (frame->pin_count == 0) {
        FlushFrame(frame);
        shard.lru.erase(std::next(it).base());
        shard.frames.erase(fit);
        shard.stats.evictions++;
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything pinned: allow temporary overshoot
  }
}

}  // namespace mtdb
