#ifndef MTDB_ANALYSIS_VERIFIER_H_
#define MTDB_ANALYSIS_VERIFIER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "core/layout.h"

namespace mtdb {
namespace analysis {

/// What the verifier runs. All passes default on.
struct VerifyOptions {
  /// Static audit of every (tenant, table) mapping (L-rules).
  bool audit_layout = true;
  /// Replays the §6.1 query transformer over every (tenant, table) in
  /// both emit modes and lints the emitted physical SELECTs (I-rules).
  bool lint_queries = true;
  /// Drives real UPDATE/DELETE probes through the layout in both DML
  /// modes, capturing the emitted physical statements via the
  /// PhysicalStatementObserver hook and linting them (I101/I102/I104).
  /// NOTE: this pass MUTATES the layout's data — it inserts sentinel
  /// probe rows and deletes them again. Run it against a dedicated
  /// verification instance (as examples/verify_layouts.cc does), not a
  /// production database.
  bool probe_dml = true;
};

/// Drives the static mapping verifier over one live layout: layout-
/// invariant audit, query-emission lint (kNested and kFlattened), and
/// two-phase DML probes (kPerRow and kBatched). Returns every finding;
/// a hard failure of the harness itself (not of a probe) is a Status.
class Verifier {
 public:
  explicit Verifier(mapping::SchemaMapping* layout) : layout_(layout) {}

  Result<std::vector<Diagnostic>> Run(const VerifyOptions& options = {});

 private:
  void LintQueries(std::vector<Diagnostic>* out);
  void ProbeDml(std::vector<Diagnostic>* out);

  mapping::SchemaMapping* layout_;
};

}  // namespace analysis
}  // namespace mtdb

#endif  // MTDB_ANALYSIS_VERIFIER_H_
