#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace mtdb {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "AND",    "OR",     "NOT",    "AS",
      "JOIN",   "INNER",  "ON",     "GROUP",  "BY",     "ORDER",  "HAVING",
      "LIMIT",  "OFFSET", "ASC",    "DESC",   "INSERT", "INTO",   "VALUES",
      "UPDATE", "SET",    "DELETE", "CREATE", "TABLE",  "INDEX",  "UNIQUE",
      "DROP",   "NULL",   "IS",     "TRUE",   "FALSE",  "DISTINCT",
      "LIKE",   "IN",     "EXPLAIN",
      "BEGIN",  "COMMIT", "ROLLBACK", "TRANSACTION",
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      // '$' continues an identifier (Postgres/Oracle style); the
      // transformation layer's generated aliases use it.
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '$')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper(word);
      for (char& ch : upper) ch = static_cast<char>(std::toupper(
          static_cast<unsigned char>(ch)));
      if (Keywords().contains(upper)) {
        out.push_back({TokenKind::kKeyword, upper, start});
      } else {
        out.push_back({TokenKind::kIdent, word, start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      out.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                     input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      out.push_back({TokenKind::kString, std::move(text), start});
      i = j;
      continue;
    }
    switch (c) {
      case '?':
        out.push_back({TokenKind::kParam, "?", start});
        ++i;
        break;
      case ',':
        out.push_back({TokenKind::kComma, ",", start});
        ++i;
        break;
      case '.':
        out.push_back({TokenKind::kDot, ".", start});
        ++i;
        break;
      case '(':
        out.push_back({TokenKind::kLParen, "(", start});
        ++i;
        break;
      case ')':
        out.push_back({TokenKind::kRParen, ")", start});
        ++i;
        break;
      case '*':
        out.push_back({TokenKind::kStar, "*", start});
        ++i;
        break;
      case '+':
        out.push_back({TokenKind::kPlus, "+", start});
        ++i;
        break;
      case '-':
        out.push_back({TokenKind::kMinus, "-", start});
        ++i;
        break;
      case '/':
        out.push_back({TokenKind::kSlash, "/", start});
        ++i;
        break;
      case '%':
        out.push_back({TokenKind::kPercent, "%", start});
        ++i;
        break;
      case ';':
        out.push_back({TokenKind::kSemicolon, ";", start});
        ++i;
        break;
      case '=':
        out.push_back({TokenKind::kEq, "=", start});
        ++i;
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          out.push_back({TokenKind::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          out.push_back({TokenKind::kNe, "<>", start});
          i += 2;
        } else {
          out.push_back({TokenKind::kLt, "<", start});
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          out.push_back({TokenKind::kGe, ">=", start});
          i += 2;
        } else {
          out.push_back({TokenKind::kGt, ">", start});
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          out.push_back({TokenKind::kNe, "!=", start});
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  out.push_back({TokenKind::kEnd, "", n});
  return out;
}

}  // namespace sql
}  // namespace mtdb
