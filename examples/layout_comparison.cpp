// Side-by-side comparison of every schema-mapping technique in §3 on the
// same workload: physical table counts (the meta-data budget), the
// transformed SQL each layout generates for the paper's query Q1, and
// point-query latency.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/basic_layout.h"
#include "core/chunk_folding_layout.h"
#include "core/chunk_layout.h"
#include "core/extension_layout.h"
#include "core/pivot_layout.h"
#include "core/private_layout.h"
#include "core/tenant_session.h"
#include "core/universal_layout.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

AppSchema MakeSchema() {
  AppSchema app;
  LogicalTable account;
  account.name = "account";
  account.columns = {{"aid", TypeId::kInt64, true},
                     {"name", TypeId::kString, false},
                     {"status", TypeId::kString, false},
                     {"amount", TypeId::kDouble, false}};
  (void)app.AddTable(std::move(account));
  ExtensionDef health;
  health.name = "healthcare";
  health.base_table = "account";
  health.columns = {{"hospital", TypeId::kString, false},
                    {"beds", TypeId::kInt32, false}};
  (void)app.AddExtension(std::move(health));
  return app;
}

std::unique_ptr<SchemaMapping> MakeByName(const std::string& name,
                                          Database* db, AppSchema* app) {
  if (name == "private") return std::make_unique<PrivateTableLayout>(db, app);
  if (name == "extension") {
    return std::make_unique<ExtensionTableLayout>(db, app);
  }
  if (name == "universal") {
    return std::make_unique<UniversalTableLayout>(db, app);
  }
  if (name == "pivot") return std::make_unique<PivotTableLayout>(db, app);
  if (name == "chunk") return std::make_unique<ChunkTableLayout>(db, app);
  return std::make_unique<ChunkFoldingLayout>(db, app);
}

}  // namespace

int main() {
  constexpr int kTenants = 20;
  constexpr int kRows = 50;
  const char* kLayouts[] = {"private", "extension", "universal",
                            "pivot",   "chunk",     "chunkfolding"};

  std::printf("Workload: %d tenants (half with the health-care extension), "
              "%d accounts each.\n\n",
              kTenants, kRows);
  std::printf("%-14s %8s %10s %12s %16s\n", "layout", "tables", "meta(KB)",
              "lookup(us)", "ext-query(us)");

  for (const char* name : kLayouts) {
    AppSchema app = MakeSchema();
    Database db;
    auto layout = MakeByName(name, &db, &app);
    if (!layout->Bootstrap().ok()) return 1;
    for (TenantId t = 0; t < kTenants; ++t) {
      if (!layout->CreateTenant(t).ok()) return 1;
      if (t % 2 == 0 && !layout->EnableExtension(t, "healthcare").ok()) {
        return 1;
      }
      TenantSession session = layout->OpenSession(t);
      for (int i = 1; i <= kRows; ++i) {
        Row row{Value::Int64(i), Value::String("n" + std::to_string(i)),
                Value::String(i % 2 == 0 ? "open" : "won"),
                Value::Double(i * 10.0)};
        if (t % 2 == 0) {
          row.push_back(Value::String("hosp" + std::to_string(i % 7)));
          row.push_back(Value::Int32(i * 3));
        }
        if (!session.InsertRow("account", row).ok()) return 1;
      }
    }

    // Point lookups by the indexed entity id.
    auto time_query = [&](const std::string& sql, TenantId tenant,
                          const std::vector<Value>& params) {
      constexpr int kReps = 200;
      TenantSession session = layout->OpenSession(tenant);
      auto warm = session.Query(sql, params);
      if (!warm.ok()) return -1.0;
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kReps; ++i) {
        auto r = session.Query(sql, params);
        if (!r.ok()) return -1.0;
      }
      auto end = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::micro>(end - start).count() /
             kReps;
    };
    double lookup = time_query("SELECT name FROM account WHERE aid = ?", 1,
                               {Value::Int64(25)});
    double ext_query = time_query(
        "SELECT name, beds FROM account WHERE hospital = 'hosp3'", 2, {});

    EngineStats stats = db.Stats();
    std::printf("%-14s %8zu %10llu %12.1f %16.1f\n", name, stats.tables,
                static_cast<unsigned long long>(stats.metadata_bytes / 1024),
                lookup, ext_query);
  }

  // Show the physical SQL each layout generates for the paper's Q1.
  std::printf("\nQ1 = SELECT beds FROM account WHERE hospital = 'hosp3'\n");
  for (const char* name : kLayouts) {
    AppSchema app = MakeSchema();
    Database db;
    auto layout = MakeByName(name, &db, &app);
    if (!layout->Bootstrap().ok()) continue;
    if (!layout->CreateTenant(17).ok()) continue;
    if (!layout->EnableExtension(17, "healthcare").ok()) continue;
    auto sql = layout->OpenSession(17).ShowTransformed(
        "SELECT beds FROM account WHERE hospital = 'hosp3'");
    std::printf("\n[%s]\n  %s\n", name,
                sql.ok() ? sql->c_str() : sql.status().ToString().c_str());
  }
  return 0;
}
