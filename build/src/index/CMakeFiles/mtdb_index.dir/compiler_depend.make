# Empty compiler generated dependencies file for mtdb_index.
# This may be replaced when dependencies are built.
