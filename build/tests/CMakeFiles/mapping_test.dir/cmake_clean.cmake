file(REMOVE_RECURSE
  "CMakeFiles/mapping_test.dir/mapping_test.cc.o"
  "CMakeFiles/mapping_test.dir/mapping_test.cc.o.d"
  "mapping_test"
  "mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
