#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "catalog/schema.h"
#include "sql/lexer.h"

namespace mtdb {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : tokens_.size() - 1];
  }
  Token Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Check(kind)) {
      return Status::ParseError(std::string("expected ") + what + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!CheckKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (!Check(TokenKind::kIdent)) {
      return Status::ParseError(std::string("expected ") + what + " near '" +
                                Peek().text + "'");
    }
    return Advance().text;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();
  Result<TableRef> ParseTableRef();
  Result<ParsedExprPtr> ParseExpr();    // OR level
  Result<ParsedExprPtr> ParseAnd();
  Result<ParsedExprPtr> ParseNot();
  Result<ParsedExprPtr> ParseComparison();
  Result<ParsedExprPtr> ParseAdditive();
  Result<ParsedExprPtr> ParseMultiplicative();
  Result<ParsedExprPtr> ParseUnary();
  Result<ParsedExprPtr> ParsePrimary();

  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseCreate();
  Result<Statement> ParseDrop();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t next_param_ = 0;
};

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (CheckKeyword("SELECT")) {
    MTDB_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    stmt.kind = StatementKind::kSelect;
  } else if (CheckKeyword("INSERT")) {
    return ParseInsert();
  } else if (CheckKeyword("UPDATE")) {
    return ParseUpdate();
  } else if (CheckKeyword("DELETE")) {
    return ParseDelete();
  } else if (CheckKeyword("CREATE")) {
    return ParseCreate();
  } else if (CheckKeyword("DROP")) {
    return ParseDrop();
  } else if (CheckKeyword("BEGIN")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("BEGIN"));
    MatchKeyword("TRANSACTION");
    stmt.kind = StatementKind::kBegin;
  } else if (CheckKeyword("COMMIT")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("COMMIT"));
    MatchKeyword("TRANSACTION");
    stmt.kind = StatementKind::kCommit;
  } else if (CheckKeyword("ROLLBACK")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("ROLLBACK"));
    MatchKeyword("TRANSACTION");
    stmt.kind = StatementKind::kRollback;
  } else if (CheckKeyword("EXPLAIN")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
    MTDB_ASSIGN_OR_RETURN(std::string mode, ExpectIdent("MAPPING"));
    for (char& ch : mode) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    if (mode != "MAPPING") {
      return Status::ParseError("expected MAPPING after EXPLAIN, got '" +
                                mode + "'");
    }
    if (CheckKeyword("EXPLAIN")) {
      return Status::ParseError("EXPLAIN MAPPING cannot be nested");
    }
    auto target = std::make_unique<Statement>();
    MTDB_ASSIGN_OR_RETURN(*target, ParseStatement());
    stmt.kind = StatementKind::kExplainMapping;
    stmt.explain = std::make_unique<ExplainStmt>();
    stmt.explain->target = std::move(target);
    return stmt;
  } else {
    return Status::ParseError("expected a statement, got '" + Peek().text +
                              "'");
  }
  Match(TokenKind::kSemicolon);
  if (!Check(TokenKind::kEnd)) {
    return Status::ParseError("trailing input near '" + Peek().text + "'");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("DISTINCT");
  if (Match(TokenKind::kStar)) {
    stmt->select_star = true;
  } else {
    while (true) {
      SelectItem item;
      MTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        MTDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      } else if (Check(TokenKind::kIdent)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  MTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  // FROM list with comma joins and INNER JOIN ... ON (flattened).
  while (true) {
    MTDB_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt->from.push_back(std::move(ref));
    while (CheckKeyword("JOIN") || CheckKeyword("INNER")) {
      MatchKeyword("INNER");
      MTDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      MTDB_ASSIGN_OR_RETURN(TableRef right, ParseTableRef());
      stmt->from.push_back(std::move(right));
      MTDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
      MTDB_ASSIGN_OR_RETURN(ParsedExprPtr on, ParseExpr());
      stmt->where = AndTogether(std::move(stmt->where), std::move(on));
    }
    if (!Match(TokenKind::kComma)) break;
  }
  if (MatchKeyword("WHERE")) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr w, ParseExpr());
    stmt->where = AndTogether(std::move(stmt->where), std::move(w));
  }
  if (MatchKeyword("GROUP")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      MTDB_ASSIGN_OR_RETURN(ParsedExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  if (MatchKeyword("HAVING")) {
    MTDB_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderItem item;
      MTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenKind::kInteger)) {
      return Status::ParseError("expected integer after LIMIT");
    }
    stmt->limit = std::atoll(Advance().text.c_str());
    if (MatchKeyword("OFFSET")) {
      if (!Check(TokenKind::kInteger)) {
        return Status::ParseError("expected integer after OFFSET");
      }
      stmt->offset = std::atoll(Advance().text.c_str());
    }
  }
  return stmt;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (Match(TokenKind::kLParen)) {
    MTDB_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    MatchKeyword("AS");
    MTDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("derived table alias"));
    return ref;
  }
  MTDB_ASSIGN_OR_RETURN(ref.table_name, ExpectIdent("table name"));
  if (MatchKeyword("AS")) {
    MTDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
  } else if (Check(TokenKind::kIdent)) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<ParsedExprPtr> Parser::ParseExpr() {
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseAnd() {
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr c, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(c));
  }
  return ParseComparison();
}

Result<ParsedExprPtr> Parser::ParseComparison() {
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAdditive());
  // IS [NOT] NULL
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    MTDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return MakeIsNull(std::move(left), negated);
  }
  // [NOT] LIKE / [NOT] IN
  {
    bool negated = false;
    size_t mark = pos_;
    if (CheckKeyword("NOT")) {
      Advance();
      negated = true;
      if (!CheckKeyword("LIKE") && !CheckKeyword("IN")) {
        pos_ = mark;  // plain NOT handled at the NOT level
        negated = false;
      }
    }
    if (MatchKeyword("LIKE")) {
      MTDB_ASSIGN_OR_RETURN(ParsedExprPtr pattern, ParseAdditive());
      return MakeLike(std::move(left), std::move(pattern), negated);
    }
    if (MatchKeyword("IN")) {
      // IN (v1, v2, ...) expands to an OR chain of equalities.
      MTDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      ParsedExprPtr chain;
      while (true) {
        MTDB_ASSIGN_OR_RETURN(ParsedExprPtr v, ParseExpr());
        ParsedExprPtr eq =
            MakeBinary(BinaryOp::kEq, left->Clone(), std::move(v));
        chain = chain == nullptr
                    ? std::move(eq)
                    : MakeBinary(BinaryOp::kOr, std::move(chain),
                                 std::move(eq));
        if (!Match(TokenKind::kComma)) break;
      }
      MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      if (negated) return MakeUnary(UnaryOp::kNot, std::move(chain));
      return chain;
    }
  }
  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenKind::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return left;
  }
  Advance();
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAdditive());
  return MakeBinary(op, std::move(left), std::move(right));
}

Result<ParsedExprPtr> Parser::ParseAdditive() {
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseMultiplicative());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    BinaryOp op = Check(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    Advance();
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseMultiplicative() {
  MTDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
         Check(TokenKind::kPercent)) {
    BinaryOp op = Check(TokenKind::kStar)
                      ? BinaryOp::kMul
                      : (Check(TokenKind::kSlash) ? BinaryOp::kDiv
                                                  : BinaryOp::kMod);
    Advance();
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ParsedExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr c, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(c));
  }
  return ParsePrimary();
}

Result<ParsedExprPtr> Parser::ParsePrimary() {
  if (Match(TokenKind::kLParen)) {
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return e;
  }
  if (Check(TokenKind::kParam)) {
    Advance();
    return MakeParam(next_param_++);
  }
  if (Check(TokenKind::kInteger)) {
    return MakeLiteral(Value::Int64(std::atoll(Advance().text.c_str())));
  }
  if (Check(TokenKind::kFloat)) {
    return MakeLiteral(Value::Double(std::atof(Advance().text.c_str())));
  }
  if (Check(TokenKind::kString)) {
    return MakeLiteral(Value::String(Advance().text));
  }
  if (CheckKeyword("NULL")) {
    Advance();
    return MakeLiteral(Value());
  }
  if (CheckKeyword("TRUE")) {
    Advance();
    return MakeLiteral(Value::Bool(true));
  }
  if (CheckKeyword("FALSE")) {
    Advance();
    return MakeLiteral(Value::Bool(false));
  }
  if (Check(TokenKind::kIdent)) {
    std::string first = Advance().text;
    if (Match(TokenKind::kLParen)) {
      // Function call: COUNT(*), SUM(expr), ...
      if (Match(TokenKind::kStar)) {
        MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        return MakeFunc(IdentLower(first), {}, /*star=*/true);
      }
      std::vector<ParsedExprPtr> args;
      if (!Check(TokenKind::kRParen)) {
        while (true) {
          MTDB_ASSIGN_OR_RETURN(ParsedExprPtr a, ParseExpr());
          args.push_back(std::move(a));
          if (!Match(TokenKind::kComma)) break;
        }
      }
      MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return MakeFunc(IdentLower(first), std::move(args), /*star=*/false);
    }
    if (Match(TokenKind::kDot)) {
      MTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      return MakeColumnRef(first, col);
    }
    return MakeColumnRef("", first);
  }
  return Status::ParseError("unexpected token '" + Peek().text +
                            "' at offset " + std::to_string(Peek().position));
}

Result<Statement> Parser::ParseInsert() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  MTDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  Statement stmt;
  stmt.kind = StatementKind::kInsert;
  stmt.insert = std::make_unique<InsertStmt>();
  MTDB_ASSIGN_OR_RETURN(stmt.insert->table, ExpectIdent("table name"));
  if (Match(TokenKind::kLParen)) {
    while (true) {
      MTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      stmt.insert->columns.push_back(std::move(col));
      if (!Match(TokenKind::kComma)) break;
    }
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
  }
  MTDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  while (true) {
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    std::vector<ParsedExprPtr> row;
    while (true) {
      MTDB_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
      row.push_back(std::move(e));
      if (!Match(TokenKind::kComma)) break;
    }
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    stmt.insert->rows.push_back(std::move(row));
    if (!Match(TokenKind::kComma)) break;
  }
  Match(TokenKind::kSemicolon);
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  Statement stmt;
  stmt.kind = StatementKind::kUpdate;
  stmt.update = std::make_unique<UpdateStmt>();
  MTDB_ASSIGN_OR_RETURN(stmt.update->table, ExpectIdent("table name"));
  MTDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  while (true) {
    MTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "="));
    MTDB_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
    stmt.update->assignments.emplace_back(std::move(col), std::move(e));
    if (!Match(TokenKind::kComma)) break;
  }
  if (MatchKeyword("WHERE")) {
    MTDB_ASSIGN_OR_RETURN(stmt.update->where, ParseExpr());
  }
  Match(TokenKind::kSemicolon);
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  MTDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  Statement stmt;
  stmt.kind = StatementKind::kDelete;
  stmt.del = std::make_unique<DeleteStmt>();
  MTDB_ASSIGN_OR_RETURN(stmt.del->table, ExpectIdent("table name"));
  if (MatchKeyword("WHERE")) {
    MTDB_ASSIGN_OR_RETURN(stmt.del->where, ParseExpr());
  }
  Match(TokenKind::kSemicolon);
  return stmt;
}

Result<Statement> Parser::ParseCreate() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  Statement stmt;
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("TABLE")) {
    if (unique) return Status::ParseError("UNIQUE TABLE is not valid");
    stmt.kind = StatementKind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    MTDB_ASSIGN_OR_RETURN(stmt.create_table->table, ExpectIdent("table name"));
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    while (true) {
      ColumnDef def;
      MTDB_ASSIGN_OR_RETURN(def.name, ExpectIdent("column name"));
      MTDB_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type name"));
      def.type = TypeFromName(type_name);
      if (def.type == TypeId::kNull) {
        return Status::ParseError("unknown type: " + type_name);
      }
      // Optional (n) length, accepted and ignored (VARCHAR(100)).
      if (Match(TokenKind::kLParen)) {
        if (!Check(TokenKind::kInteger)) {
          return Status::ParseError("expected length after (");
        }
        Advance();
        MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      }
      if (MatchKeyword("NOT")) {
        MTDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        def.not_null = true;
      }
      stmt.create_table->columns.push_back(std::move(def));
      if (!Match(TokenKind::kComma)) break;
    }
    MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    Match(TokenKind::kSemicolon);
    return stmt;
  }
  MTDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
  stmt.kind = StatementKind::kCreateIndex;
  stmt.create_index = std::make_unique<CreateIndexStmt>();
  stmt.create_index->unique = unique;
  MTDB_ASSIGN_OR_RETURN(stmt.create_index->index, ExpectIdent("index name"));
  MTDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
  MTDB_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdent("table name"));
  MTDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
  while (true) {
    MTDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
    stmt.create_index->columns.push_back(std::move(col));
    if (!Match(TokenKind::kComma)) break;
  }
  MTDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
  Match(TokenKind::kSemicolon);
  return stmt;
}

Result<Statement> Parser::ParseDrop() {
  MTDB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  Statement stmt;
  if (MatchKeyword("TABLE")) {
    stmt.kind = StatementKind::kDropTable;
    stmt.drop_table = std::make_unique<DropTableStmt>();
    MTDB_ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdent("table name"));
  } else {
    MTDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    stmt.kind = StatementKind::kDropIndex;
    stmt.drop_index = std::make_unique<DropIndexStmt>();
    MTDB_ASSIGN_OR_RETURN(stmt.drop_index->index, ExpectIdent("index name"));
  }
  Match(TokenKind::kSemicolon);
  return stmt;
}

}  // namespace

Result<Statement> Parse(const std::string& input) {
  MTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& input) {
  MTDB_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace sql
}  // namespace mtdb
