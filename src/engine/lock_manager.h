#ifndef MTDB_ENGINE_LOCK_MANAGER_H_
#define MTDB_ENGINE_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/metrics_registry.h"
#include "common/status.h"

namespace mtdb {
namespace lock {

/// Row id sentinel addressing the table itself (intent locks and the
/// whole-table X fallback of layouts without row ids).
inline constexpr int64_t kTableRowId = -1;

/// Lock modes. The manager implements write isolation only, so the
/// matrix is small: row locks are always kX; table locks are kIntentX
/// (compatible with other intents) or kX (compatible with nothing).
enum class LockMode : uint8_t { kIntentX = 0, kX = 1 };

/// Logical lock identity: the mapping layer locks the *logical* row
/// (tenant, lower-cased logical table, row id), never the physical
/// table, so tenants co-located in one universal/chunk table never
/// contend with each other (the tenant id is part of the key).
struct LockKey {
  int64_t tenant = 0;
  std::string table;  // lower-cased logical table name
  int64_t row = kTableRowId;
  /// Memoized row-independent hash over (tenant, table); 0 = not yet
  /// computed. A statement hashes each key several times — shard pick,
  /// map probe, and again at release via the holder's held list, whose
  /// copies inherit the memo — so the string is hashed once per key
  /// lineage and only the integer row mix runs per map operation.
  mutable size_t cached_hash = 0;

  bool operator==(const LockKey& o) const {
    return tenant == o.tenant && row == o.row && table == o.table;
  }
};

struct LockKeyHash {
  /// Row-independent hash over raw (tenant, table) — the shard selector
  /// without materializing a LockKey (write-epoch reads).
  static size_t TableHash(int64_t tenant, const std::string& table) {
    size_t h = std::hash<std::string>()(table);
    h ^= std::hash<int64_t>()(tenant) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    if (h == 0) h = 1;          // keep 0 as the "unset" sentinel
    return h;
  }

  /// Row-independent part, memoized. Also the shard selector: every key
  /// of one (tenant, table) lands in one shard, so a statement's table
  /// intent and row lock are taken in a single latched shard visit.
  static size_t TableHash(const LockKey& k) {
    if (k.cached_hash != 0) return k.cached_hash;
    k.cached_hash = TableHash(k.tenant, k.table);
    // safe: keys are latched or thread-confined
    return k.cached_hash;
  }

  size_t operator()(const LockKey& k) const {
    size_t h = TableHash(k);
    h ^= std::hash<int64_t>()(k.row) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// Sharded logical-row lock table with deadline-aware waits and
/// wait-for-graph deadlock detection (DESIGN.md §15).
///
/// Holders are registered by the transaction layer: a client bracket
/// registers one holder at BEGIN and keeps it until COMMIT/ROLLBACK
/// finishes (locks outlive each statement); an autocommit statement
/// leases a thread-cached statement holder whose locks drop when the
/// statement ends (the holder itself stays registered, so the per-
/// statement fast path never touches the holder registry). Every
/// bracket start / statement lease stamps the holder with a fresh
/// monotonic epoch, so epoch order is age order — the deadlock victim
/// is always the youngest (largest epoch) member of the cycle.
///
/// Blocking: a conflicting Acquire parks on the shard's condvar with
/// the shard latch released, re-checking grantability, the ambient
/// deadline (deadline::Current) and its own victim flag on every wake.
/// Before each park the waiter publishes its blocker edges into the
/// wait-for graph and runs a DFS from itself; a cycle aborts the
/// youngest member — either by returning kAborted to the caller (self)
/// or by flagging the victim and waking it (the victim's own wait
/// returns kAborted, and its session auto-rolls the bracket back).
///
/// Latch order (DESIGN.md §11): shard latch (kLockShard) > graph latch
/// (kLockWaitGraph) > metrics registry. Both rank below the txn gate,
/// because multi-row inserts acquire fresh-row locks while the
/// statement undo log already holds the gate shared.
class LockManager {
 public:
  /// Opaque per-transaction lock-owner record; defined in the .cc. The
  /// name is public only so the thread-local statement-holder cache
  /// can carry a pointer to it.
  struct Holder;

  explicit LockManager(MetricsRegistry* metrics, size_t shards = 16);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Registers a lock holder. `bracket` marks client transactions (for
  /// diagnostics; victim selection is purely age-based). Returns the
  /// holder id (monotonic, never 0).
  uint64_t CreateHolder(int64_t tenant, bool bracket);

  /// Releases every lock of `holder`, wakes waiters, forgets the
  /// holder. Must be called by the owning session thread; after this
  /// the id is invalid. No-op for id 0 or an unknown id.
  void ReleaseAll(uint64_t holder);

  /// Acquires (or upgrades to) `mode` on `key` for `holder`.
  /// Idempotent: re-acquiring an owned lock is a map probe. Returns:
  ///  * OK — lock held; *waited set true if the call ever blocked.
  ///  * kDeadlineExceeded — the ambient statement deadline expired
  ///    while waiting; the message names a current conflicting holder.
  ///  * kAborted — this holder was picked as a deadlock victim (by its
  ///    own DFS or a peer's). The caller must fail the statement so
  ///    the session rolls the bracket back and releases everything.
  Status Acquire(uint64_t holder, const LockKey& key, LockMode mode,
                 bool* waited = nullptr);

  /// True when the holder has been flagged as a deadlock victim.
  bool IsAborted(uint64_t holder) const;

  /// Current write epoch of the shard hosting (tenant, table): advances
  /// whenever an X lock in that shard is released. Collect and acquire
  /// are not atomic — a winner can write, commit and release entirely
  /// between a statement's Phase (a) run and its (then non-blocking)
  /// lock acquisition. Snapshot the epoch before collecting; if it
  /// still matches once the locks are granted, no conflicting writer
  /// can have committed-and-released inside the window (its release
  /// would have bumped the epoch before our same-shard grant), so the
  /// collected row images are current. Shard granularity means writers
  /// of other tables in the shard can force a spurious re-collect —
  /// safe, merely wasted work.
  uint64_t WriteEpoch(int64_t tenant, const std::string& table_lower) const;

  /// Currently held lock count (lock.held gauge). Sums the per-shard
  /// grant/release tallies under each shard latch in turn, so the
  /// result is a consistent snapshot per shard, not across shards —
  /// fine for a diagnostic gauge.
  uint64_t held() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  /// StatementLockContext resolves its Holder once per statement and
  /// then acquires through the resolved pointer, so the per-row fast
  /// path is one shard-latched map probe — no graph-latch id lookup.
  friend class StatementLockContext;

  struct LockEntry {
    /// (holder id, mode) pairs. Row entries hold at most one; table
    /// entries hold many intents or one X.
    std::vector<std::pair<uint64_t, LockMode>> owners;
    uint32_t waiters = 0;
  };
  struct Shard {
    Latch mu{LatchRank::kLockShard, "lock-shard"};
    std::condition_variable_any cv;
    std::unordered_map<LockKey, LockEntry, LockKeyHash> table;
    /// Entries with no owners and no waiters kept in `table` as a
    /// bounded cache: re-locking a recently unlocked row then reuses
    /// the map node instead of paying an allocate/free pair per
    /// statement. Evicted (erased on release) once the cap is hit.
    size_t empty_entries = 0;
    /// Grant/release tallies for the held() gauge, guarded by `mu`
    /// (which every grant and release already holds) — plain fields
    /// beat two shared atomic RMWs per statement.
    uint64_t granted = 0;
    uint64_t released = 0;
    /// Bumped (under `mu`) whenever an X lock in this shard is
    /// released; read lock-free by WriteEpoch(). See that method for
    /// the collect→acquire freshness protocol it backs.
    std::atomic<uint64_t> write_epoch{0};
  };
  /// Per-shard cap on cached empty entries (~400 KB of nodes/shard;
  /// one tenant-table's whole row set maps to a single shard, so the
  /// cap must comfortably hold a working set of hot rows).
  static constexpr size_t kEmptyEntryCacheCap = 2048;

  /// Sharded by (tenant, table) — see LockKeyHash::TableHash.
  Shard& ShardFor(const LockKey& key) {
    return *shards_[LockKeyHash::TableHash(key) % shards_.size()];
  }
  /// True when `holder` may take `mode` on the entry right now.
  static bool Grantable(const LockEntry& e, uint64_t holder, LockMode mode);
  /// Other holders currently blocking `holder` on the entry.
  static std::vector<uint64_t> BlockersOf(const LockEntry& e, uint64_t holder,
                                          LockMode mode);
  /// Installs the granted (holder, mode) into the entry; returns true
  /// when this is a new grant (vs. an upgrade of an existing intent).
  static bool Grant(LockEntry* e, uint64_t holder, LockMode mode);

  /// Resolves a holder id to its control block under the graph latch;
  /// nullptr for unknown ids. The pointer stays valid until ReleaseAll.
  Holder* ResolveHolder(uint64_t holder) const;
  /// CreateHolder + ResolveHolder in one graph-latch round.
  Holder* CreateHolderResolved(int64_t tenant, bool bracket);
  /// Leases this thread's cached statement holder for `tenant` (creating
  /// and registering it on first use), stamped with a fresh epoch. Sets
  /// *leased true when the holder came from the thread cache — release
  /// it with ReleaseStatementLocks, which keeps the registration. Falls
  /// back to a plain CreateHolderResolved (*leased false, release with
  /// ReleaseAll) when the cached holder is already in use by an
  /// enclosing statement on this thread.
  Holder* LeaseStatementHolder(int64_t tenant, bool* leased);
  /// Drops every lock of a leased statement holder and returns it to
  /// the thread cache — no graph-latch traffic, the holder stays
  /// registered for the thread's next statement.
  void ReleaseStatementLocks(Holder* h);
  /// Acquire with the holder already resolved (the per-row fast path).
  Status AcquireResolved(Holder* h, const LockKey& key, LockMode mode,
                         bool* waited);
  /// Uncontended combined form of the common statement shape — table
  /// IX then row X, which shard co-location makes one latched visit.
  /// Falls back to two AcquireResolved calls on any conflict.
  Status AcquireRowWithIntent(Holder* h, LockKey table_key, LockKey row_key,
                              bool* waited);
  /// Shard sweep shared by ReleaseAll and ReleaseStatementLocks: drops
  /// `holder`'s ownership of each key and wakes waiters.
  void ReleaseKeys(uint64_t holder, const std::vector<LockKey>& keys,
                   const std::vector<LockEntry*>& entries);

  /// Runs DFS from `self` over waits_for_; on a cycle returns the
  /// youngest member's id, else 0. Caller holds graph_mu_.
  uint64_t FindDeadlockVictimLocked(uint64_t self) const;
  /// Flags `victim` and wakes every shard so it observes the flag.
  /// No-op when the victim has no live waits_for_ entry: a holder whose
  /// edges are gone was granted since the DFS saw it (grant acceptance
  /// retires the edges under graph_mu_) and is no longer parked —
  /// flagging it now would spuriously abort its next acquisition.
  /// Caller holds graph_mu_ (and one shard latch; condvars need no
  /// latch to notify).
  void AbortVictimLocked(uint64_t victim);

  Counter* TenantCounter(const char* what, int64_t tenant);
  LatencyHistogram* TenantWaitHistogram(int64_t tenant);

  MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards holders_ and waits_for_. Acquired under a shard latch on
  /// the wait path, hence the lower rank.
  mutable Latch graph_mu_{LatchRank::kLockWaitGraph, "lock-wait-graph"};
  std::map<uint64_t, std::unique_ptr<Holder>> holders_;
  /// Retired Holder blocks recycled by CreateHolder (autocommit creates
  /// one per statement; reuse keeps the fast path allocation-free).
  std::vector<std::unique_ptr<Holder>> holder_pool_;
  /// lock.acquired.t<tenant> cache so CreateHolder skips the registry's
  /// name lookup after a tenant's first holder.
  std::map<int64_t, Counter*> acquired_counters_;
  /// waiter -> holders it currently waits for (edges live only while
  /// the waiter is parked; refreshed on every wake).
  std::map<uint64_t, std::vector<uint64_t>> waits_for_;
  uint64_t next_holder_ = 1;  // guarded by graph_mu_
  /// Age stamps for victim selection; advanced latch-free at every
  /// bracket start and statement lease.
  std::atomic<uint64_t> epoch_counter_{1};
  /// Process-unique instance id: the per-thread statement-holder cache
  /// keys on (manager pointer, serial), so a manager reincarnated at a
  /// recycled address can never match another instance's cache entry.
  const uint64_t serial_;
};

/// Per-statement lock acquisition context, installed thread-locally by
/// the mapping layer's write entry points (Execute/InsertRow) around
/// statement execution — mirrors ExplainScope/TransactionContext::Scope.
/// Paths that must acquire nothing (admin DDL under the exclusive layer
/// latch, EXPLAIN MAPPING, recovery and compensation replay through the
/// engine front door) simply never install one, so the acquisition
/// helpers inside the shared DML code no-op there.
///
/// Holder resolution: when the statement runs inside a client bracket
/// (txn_holder != 0) locks join the bracket's holder and survive until
/// COMMIT/ROLLBACK; otherwise a statement-duration holder is created on
/// first use and released by the destructor — which the entry points
/// order to run only after the statement's undo log has finished (locks
/// drop after compensation completes, never before).
class StatementLockContext {
 public:
  /// `lm` may be null (locking disabled): every method no-ops.
  StatementLockContext(LockManager* lm, int64_t tenant, uint64_t txn_holder);
  ~StatementLockContext();

  StatementLockContext(const StatementLockContext&) = delete;
  StatementLockContext& operator=(const StatementLockContext&) = delete;

  /// X lock on one logical row. Rejects negative row ids (a NULL row
  /// column maps to -1 == kTableRowId and would silently alias the
  /// table lock); callers degrade such sets to LockTable(kX) instead.
  Status LockRow(const std::string& table_lower, int64_t row_id);
  /// Table IX + row X in one shard visit — the single-row statement
  /// fast path (equivalent to LockTable(kIntentX) then LockRow).
  Status LockRowWithIntent(const std::string& table_lower, int64_t row_id);
  /// Table-level lock (kIntentX before row locks; kX as the whole-table
  /// fallback for layouts without row ids).
  Status LockTable(const std::string& table_lower, LockMode mode);

  /// True once any acquisition in this statement blocked. A wait always
  /// implies the table's write epoch moved (the holder released to let
  /// us in), so the mapping layer's freshness check is epoch-based and
  /// this flag is belt-and-braces on top of TableWriteEpoch().
  bool waited() const { return waited_; }
  void clear_waited() { waited_ = false; }

  /// LockManager::WriteEpoch of (tenant, table_lower)'s shard; 0 when
  /// locking is disabled (so disabled snapshots compare equal).
  uint64_t TableWriteEpoch(const std::string& table_lower) const;

  bool enabled() const { return lm_ != nullptr; }

  /// The context installed on this thread (nullptr outside a locking
  /// statement).
  static StatementLockContext* Current();

 private:
  /// Leases the thread-cached statement holder on first use (when no
  /// bracket holder was passed in) and caches the resolved control
  /// block, so repeat acquisitions skip the graph latch entirely.
  LockManager::Holder* EnsureResolved();

  LockManager* lm_;
  int64_t tenant_;
  uint64_t holder_ = 0;
  LockManager::Holder* resolved_ = nullptr;
  /// How the destructor must dispose of the holder: a leased thread-
  /// cached holder returns to the cache with its registration intact;
  /// an owned fallback holder (nested statement) is fully released.
  bool leased_holder_ = false;
  bool owns_holder_ = false;
  bool waited_ = false;
  StatementLockContext* prev_;
};

}  // namespace lock
}  // namespace mtdb

#endif  // MTDB_ENGINE_LOCK_MANAGER_H_
