#ifndef MTDB_CORE_PRIVATE_LAYOUT_H_
#define MTDB_CORE_PRIVATE_LAYOUT_H_

#include <memory>
#include <string>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Figure 4(a) "Private Table Layout": every tenant gets private
/// physical tables; the query-transformation layer only renames tables.
/// Full extensibility, moderate consolidation — the number of physical
/// tables (and thus the meta-data charge) grows with the tenant count,
/// which is exactly what §5 measures.
class PrivateTableLayout final : public SchemaMapping {
 public:
  PrivateTableLayout(Database* db, const AppSchema* app)
      : SchemaMapping(db, app) {}

  std::string name() const override { return "private"; }

  Status Bootstrap() override { return Status::OK(); }

  /// Physical table name for (tenant, logical table) under the tenant's
  /// current extension set.
  std::string PhysicalName(TenantId tenant, const std::string& table) const;

 protected:
  Status CreateTenantImpl(TenantId tenant) override;
  Status DropTenantImpl(TenantId tenant) override;
  Status EnableExtensionImpl(TenantId tenant, const std::string& ext) override;
  Status RecoverDerivedState() override;
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
  Result<int64_t> GenericUpdate(TenantId tenant, const sql::UpdateStmt& stmt,
                                const std::vector<Value>& params) override;
  Result<int64_t> GenericDelete(TenantId tenant, const sql::DeleteStmt& stmt,
                                const std::vector<Value>& params) override;

 private:
  /// (Re)creates the tenant's physical table for `table` using the
  /// tenant's current effective schema, migrating existing rows.
  Status MaterializeTable(TenantId tenant, const std::string& table,
                          const std::string& old_name);
  Status CreateIndexes(TenantId tenant, const std::string& physical,
                       const EffectiveTable& eff);

  /// Version counter per (tenant, table) so ALTER-style migrations get
  /// fresh physical names (the engine has no in-place ALTER TABLE).
  std::map<std::pair<TenantId, std::string>, int> versions_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_PRIVATE_LAYOUT_H_
