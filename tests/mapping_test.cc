#include <gtest/gtest.h>

#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

/// Layouts that support extensibility (everything but Basic).
const LayoutKind kExtensibleLayouts[] = {
    LayoutKind::kPrivate,  LayoutKind::kExtension, LayoutKind::kUniversal,
    LayoutKind::kPivot,    LayoutKind::kChunk,     LayoutKind::kVertical,
    LayoutKind::kChunkFolding,
};

class MappingLayoutTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  MappingLayoutTest() : app_(FigureFourSchema()), db_(EngineOptions()) {
    layout_ = MakeLayout(GetParam(), &db_, &app_);
  }

  void Load() {
    ASSERT_TRUE(layout_->Bootstrap().ok());
    ASSERT_TRUE(LoadFigureFourData(layout_.get()).ok());
  }

  AppSchema app_;
  Database db_;
  std::unique_ptr<SchemaMapping> layout_;
};

TEST_P(MappingLayoutTest, QueryQ1) {
  Load();
  // The paper's Q1: SELECT Beds FROM Account17 WHERE Hospital='State'.
  auto r = layout_->Query(17, "SELECT beds FROM account WHERE hospital = 'State'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1042);
}

TEST_P(MappingLayoutTest, TenantIsolation) {
  Load();
  // Tenant 35 sees only its own single account.
  auto r = layout_->Query(35, "SELECT aid, name FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "Ball");
}

TEST_P(MappingLayoutTest, SelectStarShowsTenantSchema) {
  Load();
  auto r17 = layout_->Query(17, "SELECT * FROM account ORDER BY aid");
  ASSERT_TRUE(r17.ok()) << r17.status().ToString();
  ASSERT_EQ(r17->columns.size(), 4u);  // aid, name, hospital, beds
  ASSERT_EQ(r17->rows.size(), 2u);
  EXPECT_EQ(r17->rows[0][1].AsString(), "Acme");
  EXPECT_EQ(r17->rows[0][2].AsString(), "St. Mary");
  EXPECT_EQ(r17->rows[0][3].AsInt64(), 135);

  auto r42 = layout_->Query(42, "SELECT * FROM account");
  ASSERT_TRUE(r42.ok());
  ASSERT_EQ(r42->columns.size(), 3u);  // aid, name, dealers
  EXPECT_EQ(r42->rows[0][2].AsInt64(), 65);

  auto r35 = layout_->Query(35, "SELECT * FROM account");
  ASSERT_TRUE(r35.ok());
  EXPECT_EQ(r35->columns.size(), 2u);  // no extension
}

TEST_P(MappingLayoutTest, ExtensionColumnInvisibleToOtherTenants) {
  Load();
  EXPECT_FALSE(layout_->Query(35, "SELECT beds FROM account").ok());
  EXPECT_FALSE(layout_->Query(42, "SELECT beds FROM account").ok());
}

TEST_P(MappingLayoutTest, UpdateThroughMapping) {
  Load();
  auto n = layout_->Execute(
      17, "UPDATE account SET beds = 200 WHERE hospital = 'St. Mary'");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  auto r = layout_->Query(17,
                          "SELECT beds FROM account WHERE hospital = 'St. Mary'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 200);
}

TEST_P(MappingLayoutTest, UpdateMixedBaseAndExtensionColumns) {
  Load();
  auto n = layout_->Execute(
      17, "UPDATE account SET name = 'Acme2', beds = beds + 1 WHERE aid = 1");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  auto r = layout_->Query(17, "SELECT name, beds FROM account WHERE aid = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "Acme2");
  EXPECT_EQ(r->rows[0][1].AsInt64(), 136);
}

TEST_P(MappingLayoutTest, DeleteThroughMapping) {
  Load();
  auto n = layout_->Execute(17, "DELETE FROM account WHERE aid = 2");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  auto r = layout_->Query(17, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  // Other tenants unaffected.
  auto other = layout_->Query(35, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->rows[0][0].AsInt64(), 1);
}

TEST_P(MappingLayoutTest, ParameterizedLogicalQuery) {
  Load();
  auto r = layout_->Query(17, "SELECT name FROM account WHERE aid = ?",
                          {Value::Int64(2)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "Gump");
}

TEST_P(MappingLayoutTest, AggregationOverLogicalTable) {
  Load();
  auto r = layout_->Query(17, "SELECT COUNT(*), SUM(beds) FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r->rows[0][1].AsInt64(), 135 + 1042);
}

TEST_P(MappingLayoutTest, DropTenantRemovesData) {
  Load();
  ASSERT_TRUE(layout_->DropTenant(17).ok());
  // Other tenants keep their data.
  auto r = layout_->Query(35, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  // The dropped tenant is gone.
  EXPECT_FALSE(layout_->Query(17, "SELECT * FROM account").ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllExtensibleLayouts, MappingLayoutTest,
    ::testing::ValuesIn(kExtensibleLayouts),
    [](const ::testing::TestParamInfo<LayoutKind>& info) {
      return LayoutKindName(info.param);
    });

// --- layout-specific behaviours --------------------------------------

TEST(BasicLayoutTest, RejectsExtensions) {
  AppSchema app = FigureFourSchema();
  Database db;
  BasicLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(layout.CreateTenant(17).ok());
  EXPECT_EQ(layout.EnableExtension(17, "healthcare").code(),
            StatusCode::kNotImplemented);
}

TEST(BasicLayoutTest, SharedTableQueriesAndDml) {
  AppSchema app = FigureFourSchema();
  Database db;
  BasicLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(layout.CreateTenant(1).ok());
  ASSERT_TRUE(layout.CreateTenant(2).ok());
  ASSERT_TRUE(
      layout.Execute(1, "INSERT INTO account (aid, name) VALUES (1, 'a1')")
          .ok());
  ASSERT_TRUE(
      layout.Execute(2, "INSERT INTO account (aid, name) VALUES (1, 'a2')")
          .ok());
  // Only 10 = 1 physical table total (plus indexes).
  EXPECT_EQ(db.Stats().tables, 1u);
  auto r = layout.Query(2, "SELECT name FROM account");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "a2");
  ASSERT_TRUE(layout.Execute(1, "DELETE FROM account").ok());
  auto left = layout.Query(2, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->rows[0][0].AsInt64(), 1);
}

TEST(PrivateLayoutTest, TableCountGrowsWithTenants) {
  AppSchema app = FigureFourSchema();
  Database db;
  PrivateTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(layout.CreateTenant(t).ok());
  }
  EXPECT_EQ(db.Stats().tables, 5u);  // one logical table x five tenants
}

TEST(UniversalLayoutTest, SingleTableHostsEveryone) {
  AppSchema app = FigureFourSchema();
  Database db;
  UniversalTableLayout layout(&db, &app, /*width=*/10);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  EXPECT_EQ(db.Stats().tables, 1u);
  // Physical data columns are VARCHAR: values round-trip through casts.
  auto r = layout.Query(17, "SELECT beds FROM account WHERE beds > 200");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1042);
}

TEST(UniversalLayoutTest, WidthExhaustion) {
  AppSchema app = FigureFourSchema();
  Database db;
  UniversalTableLayout layout(&db, &app, /*width=*/2);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(layout.CreateTenant(17).ok());
  // account for tenant 17 would need 4 columns > width 2: the layout
  // rejects the extension when rebuilding the mapping.
  Status st = layout.EnableExtension(17, "healthcare");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Base columns still work.
  auto r = layout.Query(17, "SELECT aid FROM account");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(PivotLayoutTest, FourPivotTablesOnly) {
  AppSchema app = FigureFourSchema();
  Database db;
  PivotTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  EXPECT_EQ(db.Stats().tables, 4u);  // pivot_int/dbl/date/str
  // Each value is its own physical row: tenant 17 has 2 rows x 2 int
  // columns = 4 rows in pivot_int (aid, beds).
  auto r = db.Query("SELECT COUNT(*) FROM pivot_int WHERE tenant = 17");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 4);
}

TEST(ChunkLayoutTest, FoldedChunksShareTwoTables) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  EXPECT_EQ(db.Stats().tables, 2u);  // chunkdata + chunkidx
}

TEST(ChunkLayoutTest, VerticalPartitioningCreatesMoreTables) {
  AppSchema app = FigureFourSchema();
  Database fold_db, vp_db;
  ChunkLayoutOptions fold_options;
  fold_options.fold = true;
  ChunkTableLayout folded(&fold_db, &app, fold_options);
  ASSERT_TRUE(folded.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&folded).ok());

  ChunkLayoutOptions vp_options;
  vp_options.fold = false;
  ChunkTableLayout vertical(&vp_db, &app, vp_options);
  ASSERT_TRUE(vertical.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&vertical).ok());

  EXPECT_GT(vp_db.Stats().tables, fold_db.Stats().tables);
  EXPECT_GT(vp_db.Stats().metadata_bytes, fold_db.Stats().metadata_bytes);
}

TEST(ChunkFoldingTest, BaseConventionalExtensionsChunked) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkFoldingLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  // cf_account + fold_chunkdata + fold_chunkidx = 3 physical tables.
  EXPECT_EQ(db.Stats().tables, 3u);
  // Base columns live in the conventional table...
  auto base = db.Query("SELECT COUNT(*) FROM cf_account");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->rows[0][0].AsInt64(), 4);  // all four accounts
  // ...extension values in the chunk tables (2 rows for tenant 17's
  // hospital/beds chunk + 1 for tenant 42's dealers chunk).
  auto chunks = db.Query("SELECT COUNT(*) FROM fold_chunkdata");
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(chunks->rows[0][0].AsInt64(), 3);
}

TEST(ChunkFoldingTest, ConventionalExtensionOption) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkFoldingOptions options;
  options.conventional_extensions = {"healthcare"};
  ChunkFoldingLayout layout(&db, &app, options);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  // healthcare got its own conventional table (the Figure 3 case where
  // AccountHealthCare is hot); automotive stays chunked.
  auto hc = db.Query("SELECT COUNT(*) FROM cfext_healthcare");
  ASSERT_TRUE(hc.ok());
  EXPECT_EQ(hc->rows[0][0].AsInt64(), 2);
  auto q = layout.Query(17, "SELECT beds FROM account WHERE hospital = 'State'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->rows.size(), 1u);
  EXPECT_EQ(q->rows[0][0].AsInt64(), 1042);
}

TEST(ShowTransformedTest, NestedEmissionShowsReconstruction) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  layout.transform_options().emit_mode = EmitMode::kNested;
  auto sql = layout.ShowTransformed(
      17, "SELECT beds FROM account WHERE hospital = 'State'");
  ASSERT_TRUE(sql.ok());
  // The §6.1 shape: a derived table over the chunk table with meta-data
  // predicates.
  EXPECT_NE(sql->find("(SELECT"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("tenant = 17"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("chunk"), std::string::npos) << *sql;
}

TEST(ShowTransformedTest, FlattenedEmissionInlinesJoins) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  layout.transform_options().emit_mode = EmitMode::kFlattened;
  auto sql = layout.ShowTransformed(
      17, "SELECT beds FROM account WHERE hospital = 'State'");
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql->find("(SELECT"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("tenant = 17"), std::string::npos) << *sql;
}

TEST(FlattenedQueryTest, SameResultsAsNested) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());
  const char* q = "SELECT name, beds FROM account WHERE beds > 100";
  layout.transform_options().emit_mode = EmitMode::kNested;
  auto nested = layout.Query(17, q);
  layout.transform_options().emit_mode = EmitMode::kFlattened;
  auto flat = layout.Query(17, q);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  ASSERT_EQ(nested->rows.size(), flat->rows.size());
  EXPECT_EQ(nested->rows.size(), 2u);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
