// On-line schema evolution: the §3 argument that generic structures let
// logical schemas change while the database stays on-line, versus the
// Private Table Layout where adding columns means physical DDL and a
// table rebuild.
//
// The same evolution — a tenant adopts the health-care extension after
// already having data — is run against both layouts, counting the
// physical work each one does.
#include <cstdio>

#include "core/chunk_folding_layout.h"
#include "core/private_layout.h"
#include "core/tenant_session.h"
#include "testbed/crm_schema.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void RunEvolution(SchemaMapping* layout, const char* label) {
  Check(layout->Bootstrap(), "bootstrap");
  Check(layout->CreateTenant(7), "tenant");

  // Phase 1: the tenant works with the base schema for a while, through
  // the session its application holds.
  TenantSession session = layout->OpenSession(7);
  for (int i = 1; i <= 200; ++i) {
    Check(session
              .Execute("INSERT INTO account (id, campaign_id, name, "
                       "status) VALUES (?, 0, ?, 'open')",
                       {Value::Int64(i),
                        Value::String("acct" + std::to_string(i))})
              .status(),
          "insert");
  }

  Database* db = layout->db();
  EngineStats before = db->Stats();
  uint64_t allocations_before = before.store.allocations;
  size_t tables_before = before.tables;

  // Phase 2: the business becomes a hospital chain — adopt the
  // health-care extension while the service keeps running.
  Check(layout->EnableExtension(7, "healthcare_account"), "extension");

  EngineStats after = db->Stats();
  std::printf("%-14s: extension enabled; %llu fresh pages allocated, "
              "tables %zu -> %zu, physical DDL statements: %llu\n",
              label,
              static_cast<unsigned long long>(after.store.allocations -
                                              allocations_before),
              tables_before, after.tables,
              static_cast<unsigned long long>(layout->stats().ddl_statements));

  // Phase 3: old rows show NULL extension values; new traffic uses them.
  // The session opened before the evolution keeps working — DDL and DML
  // coordinate through the layout's internal latches.
  Check(session
            .Execute("UPDATE account SET hospital = 'General', beds = 320 "
                     "WHERE id = 42")
            .status(),
        "update");
  auto row =
      session.Query("SELECT name, hospital, beds FROM account WHERE id = 42");
  Check(row.status(), "query");
  std::printf("                row 42 after evolution: name=%s hospital=%s "
              "beds=%s\n",
              row->rows[0][0].ToString().c_str(),
              row->rows[0][1].ToString().c_str(),
              row->rows[0][2].ToString().c_str());
  auto old_row = session.Query("SELECT hospital FROM account WHERE id = 41");
  Check(old_row.status(), "query");
  std::printf("                row 41 untouched: hospital=%s\n",
              old_row->rows[0][0].ToString().c_str());
}

}  // namespace

int main() {
  AppSchema app = testbed::BuildCrmAppSchema();
  std::printf("Evolving a tenant with 200 existing accounts onto the "
              "health-care extension:\n\n");
  {
    Database db;
    PrivateTableLayout layout(&db, &app);
    RunEvolution(&layout, "private");
  }
  std::printf("\n");
  {
    Database db;
    ChunkFoldingLayout layout(&db, &app);
    RunEvolution(&layout, "chunk folding");
  }
  std::printf(
      "\nThe private layout rebuilds the tenant's table (DDL + full copy);\n"
      "Chunk Folding only appends per-row chunk entries and never issues\n"
      "DDL — 'logical schema changes can occur while the database is\n"
      "on-line' (§1.2).\n");
  return 0;
}
