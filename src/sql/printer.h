#ifndef MTDB_SQL_PRINTER_H_
#define MTDB_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace mtdb {
namespace sql {

/// Renders an AST back to SQL text. The mapping layer uses this to show
/// the physical queries it generates (as in the paper's Q1 examples) and
/// tests use it for round-trip checks.
std::string ToSql(const ParsedExpr& expr);
std::string ToSql(const SelectStmt& stmt);
std::string ToSql(const Statement& stmt);

}  // namespace sql
}  // namespace mtdb

#endif  // MTDB_SQL_PRINTER_H_
