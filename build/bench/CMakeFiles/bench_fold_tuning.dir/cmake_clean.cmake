file(REMOVE_RECURSE
  "CMakeFiles/bench_fold_tuning.dir/bench_fold_tuning.cc.o"
  "CMakeFiles/bench_fold_tuning.dir/bench_fold_tuning.cc.o.d"
  "bench_fold_tuning"
  "bench_fold_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fold_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
