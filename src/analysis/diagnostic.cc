#include "analysis/diagnostic.h"

namespace mtdb {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " ";
  out += rule_id;
  if (!location.empty()) {
    out += " [" + location + "]";
  }
  out += ": " + message;
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

}  // namespace analysis
}  // namespace mtdb
