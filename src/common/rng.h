#ifndef MTDB_COMMON_RNG_H_
#define MTDB_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace mtdb {

/// Deterministic xorshift128+ generator. All synthetic data in the
/// testbed and benchmarks flows through this so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5DEECE66DULL) {
    state0_ = seed ^ 0x9E3779B97F4A7C15ULL;
    state1_ = seed * 0xBF58476D1CE4E5B9ULL + 1;
    // Warm up so low-entropy seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = state0_;
    const uint64_t y = state1_;
    state0_ = y;
    x ^= x << 23;
    state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1_ + y;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(Next() >> 11) /
                             static_cast<double>(1ULL << 53));
  }

  bool Bernoulli(double p) { return UniformDouble(0.0, 1.0) < p; }

  /// Random lowercase word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len);

 private:
  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_RNG_H_
