#ifndef MTDB_ENGINE_SESSION_H_
#define MTDB_ENGINE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "sql/ast.h"

namespace mtdb {

/// A parsed statement ready for repeated execution with different bind
/// parameters (parse once, execute many). Produced by Session::Prepare;
/// immutable after construction, so one PreparedStatement may be shared
/// by several sessions.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  const sql::Statement& statement() const { return stmt_; }
  bool is_select() const {
    return stmt_.kind == sql::StatementKind::kSelect;
  }

 private:
  friend class Session;
  explicit PreparedStatement(sql::Statement stmt) : stmt_(std::move(stmt)) {}
  sql::Statement stmt_;
};

/// The engine's client front door: a lightweight per-worker handle that
/// groups the statements of one logical connection. Sessions are cheap
/// to open (Database::OpenSession), movable, and independent — any
/// number may execute concurrently; the engine latches per statement
/// only what that statement touches.
///
/// A Session itself is NOT thread-safe: it belongs to one worker thread
/// at a time, exactly like a SQL connection. Open one per thread.
class Session {
 public:
  Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Executes one SQL string. SELECTs yield a QueryResult; everything
  /// else yields the affected-row count (DDL reports 0).
  Result<StatementResult> Execute(const std::string& sql,
                                  const std::vector<Value>& params = {});

  /// Executes an already-parsed statement (the mapping layer transforms
  /// ASTs directly and skips re-parsing).
  Result<StatementResult> Execute(const sql::Statement& stmt,
                                  const std::vector<Value>& params = {});

  /// Executes a prepared statement with fresh bind parameters.
  Result<StatementResult> Execute(const PreparedStatement& prepared,
                                  const std::vector<Value>& params = {});

  /// Parses `sql` once for repeated execution.
  Result<PreparedStatement> Prepare(const std::string& sql) const;

  /// SELECT-only convenience: unwraps the rows alternative.
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Direct row insert, bypassing SQL parsing (bulk loaders, the mapping
  /// layer's chunked writes). Latched exactly like an INSERT statement.
  Status InsertRow(const std::string& table, const Row& row);

  Database* database() const { return db_; }
  explicit operator bool() const { return db_ != nullptr; }

  /// Statements this session has executed (its "statement grouping"):
  /// workload drivers read this instead of keeping their own tallies.
  uint64_t statements_executed() const { return statements_; }

 private:
  friend class Database;
  explicit Session(Database* db) : db_(db) {}

  Database* db_ = nullptr;
  uint64_t statements_ = 0;
};

}  // namespace mtdb

#endif  // MTDB_ENGINE_SESSION_H_
