file(REMOVE_RECURSE
  "libmtdb_catalog.a"
)
