#include "storage/page_store.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace mtdb {

PageId PageStore::Allocate(PageType type) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.allocations++;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id].type = type;
    std::memset(pages_[id].image.data(), 0, page_size_);
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(StoredPage{type, std::vector<char>(page_size_, 0)});
  }
  return id;
}

void PageStore::Deallocate(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id >= 0 && static_cast<size_t>(id) < pages_.size());
  pages_[id].type = PageType::kFree;
  free_list_.push_back(id);
}

void PageStore::Read(PageId id, char* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(id >= 0 && static_cast<size_t>(id) < pages_.size() &&
           pages_[id].type != PageType::kFree);
    stats_.physical_reads++;
    std::memcpy(out, pages_[id].image.data(), page_size_);
  }
  uint64_t latency = read_latency_ns_.load(std::memory_order_relaxed);
  if (latency > 0) {
    // The device stall blocks only the issuing session thread; other
    // sessions proceed, so concurrent misses overlap like synchronous
    // reads against one shared appliance.
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
}

void PageStore::Write(PageId id, const char* in) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.physical_writes++;
  std::memcpy(pages_[id].image.data(), in, page_size_);
}

PageType PageStore::TypeOf(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) return PageType::kFree;
  return pages_[id].type;
}

bool PageStore::IsAllocated(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id >= 0 && static_cast<size_t>(id) < pages_.size() &&
         pages_[id].type != PageType::kFree;
}

size_t PageStore::allocated_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size() - free_list_.size();
}

PageStoreStats PageStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PageStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PageStoreStats();
}

}  // namespace mtdb
