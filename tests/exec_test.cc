#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/executor.h"

namespace mtdb {
namespace {

ExprPtr Col(size_t i) { return std::make_unique<ColumnRefExpr>(i, "c"); }
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_unique<CompareExpr>(CompareOp::kEq, std::move(l),
                                       std::move(r));
}

/// Builds a ValuesExecutor over int rows.
ExecutorPtr IntRows(const std::vector<std::vector<int64_t>>& rows,
                    std::vector<std::string> names) {
  std::vector<std::vector<ExprPtr>> exprs;
  for (const auto& r : rows) {
    std::vector<ExprPtr> row;
    for (int64_t v : r) row.push_back(Lit(Value::Int64(v)));
    exprs.push_back(std::move(row));
  }
  std::vector<TypeId> types(names.size(), TypeId::kInt64);
  return std::make_unique<ValuesExecutor>(std::move(exprs), std::move(names),
                                          std::move(types));
}

std::vector<Row> Drain(Executor* exec) {
  ExecContext ctx;
  EXPECT_TRUE(exec->Init(ctx).ok());
  std::vector<Row> out;
  Row row;
  while (true) {
    auto more = exec->Next(&row, ctx);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    out.push_back(row);
  }
  return out;
}

TEST(ExprTest, ThreeValuedAnd) {
  ExecContext ctx;
  Row row;
  AndExpr null_and_false(Lit(Value::Null(TypeId::kBool)),
                         Lit(Value::Bool(false)));
  auto v = null_and_false.Eval(row, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->is_null());  // NULL AND FALSE = FALSE
  EXPECT_FALSE(v->AsBool());

  AndExpr null_and_true(Lit(Value::Null(TypeId::kBool)),
                        Lit(Value::Bool(true)));
  v = null_and_true.Eval(row, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());  // NULL AND TRUE = NULL
}

TEST(ExprTest, ThreeValuedOr) {
  ExecContext ctx;
  Row row;
  OrExpr null_or_true(Lit(Value::Null(TypeId::kBool)), Lit(Value::Bool(true)));
  auto v = null_or_true.Eval(row, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());  // NULL OR TRUE = TRUE

  OrExpr null_or_false(Lit(Value::Null(TypeId::kBool)),
                       Lit(Value::Bool(false)));
  v = null_or_false.Eval(row, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());  // NULL OR FALSE = NULL
}

TEST(ExprTest, DivisionByZeroIsError) {
  ExecContext ctx;
  Row row;
  ArithmeticExpr div(ArithOp::kDiv, Lit(Value::Int64(1)),
                     Lit(Value::Int64(0)));
  EXPECT_FALSE(div.Eval(row, ctx).ok());
}

TEST(ExprTest, LikeMatcher) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_FALSE(LikeMatch("hello", "h_%x"));
  EXPECT_FALSE(LikeMatch("hello", ""));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_FALSE(LikeMatch("hel", "h_llo"));
}

TEST(ExprTest, ParamOutOfRange) {
  ExecContext ctx;  // no params
  Row row;
  ParamExpr p(0);
  EXPECT_FALSE(p.Eval(row, ctx).ok());
}

TEST(ExecutorTest, FilterDropsNonMatching) {
  auto values = IntRows({{1}, {2}, {3}, {2}}, {"a"});
  FilterExecutor filter(std::move(values), Eq(Col(0), Lit(Value::Int64(2))));
  auto rows = Drain(&filter);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(ExecutorTest, ProjectComputesExpressions) {
  auto values = IntRows({{2, 3}}, {"a", "b"});
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::make_unique<ArithmeticExpr>(ArithOp::kMul, Col(0),
                                                   Col(1)));
  ProjectExecutor project(std::move(values), std::move(exprs), {"p"},
                          {TypeId::kInt64});
  auto rows = Drain(&project);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 6);
}

TEST(ExecutorTest, NestedLoopJoinProducesCrossFiltered) {
  auto left = IntRows({{1}, {2}}, {"l"});
  auto right = IntRows({{1}, {2}, {2}}, {"r"});
  NestedLoopJoinExecutor join(std::move(left), std::move(right),
                              Eq(Col(0), Col(1)));
  auto rows = Drain(&join);
  EXPECT_EQ(rows.size(), 3u);  // (1,1), (2,2), (2,2)
}

TEST(ExecutorTest, HashJoinMatchesNestedLoopJoin) {
  std::vector<std::vector<int64_t>> l, r;
  for (int64_t i = 0; i < 30; ++i) l.push_back({i % 7, i});
  for (int64_t i = 0; i < 40; ++i) r.push_back({i % 5, i * 10});

  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col(0));
  rk.push_back(Col(0));
  HashJoinExecutor hash(IntRows(l, {"lk", "lv"}), IntRows(r, {"rk", "rv"}),
                        std::move(lk), std::move(rk), nullptr);
  NestedLoopJoinExecutor nl(IntRows(l, {"lk", "lv"}), IntRows(r, {"rk", "rv"}),
                            Eq(Col(0), Col(2)));
  auto hash_rows = Drain(&hash);
  auto nl_rows = Drain(&nl);
  EXPECT_EQ(hash_rows.size(), nl_rows.size());
}

TEST(ExecutorTest, HashAggComputesAllAggregates) {
  auto values = IntRows({{1, 10}, {1, 20}, {2, 5}, {1, 30}}, {"g", "v"});
  std::vector<ExprPtr> groups;
  groups.push_back(Col(0));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "count"});
  aggs.push_back({AggKind::kSum, Col(1), "sum"});
  aggs.push_back({AggKind::kAvg, Col(1), "avg"});
  aggs.push_back({AggKind::kMin, Col(1), "min"});
  aggs.push_back({AggKind::kMax, Col(1), "max"});
  HashAggExecutor agg(std::move(values), std::move(groups), std::move(aggs),
                      {"g", "count", "sum", "avg", "min", "max"},
                      std::vector<TypeId>(6, TypeId::kNull));
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& row : rows) {
    if (row[0].AsInt64() == 1) {
      EXPECT_EQ(row[1].AsInt64(), 3);
      EXPECT_EQ(row[2].AsInt64(), 60);
      EXPECT_DOUBLE_EQ(row[3].AsDouble(), 20.0);
      EXPECT_EQ(row[4].AsInt64(), 10);
      EXPECT_EQ(row[5].AsInt64(), 30);
    } else {
      EXPECT_EQ(row[1].AsInt64(), 1);
      EXPECT_EQ(row[2].AsInt64(), 5);
    }
  }
}

TEST(ExecutorTest, AggIgnoresNulls) {
  std::vector<std::vector<ExprPtr>> rows;
  for (int i = 0; i < 3; ++i) {
    std::vector<ExprPtr> row;
    row.push_back(i == 1 ? Lit(Value()) : Lit(Value::Int64(10)));
    rows.push_back(std::move(row));
  }
  auto values = std::make_unique<ValuesExecutor>(
      std::move(rows), std::vector<std::string>{"v"},
      std::vector<TypeId>{TypeId::kInt64});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, Col(0), "count"});
  aggs.push_back({AggKind::kSum, Col(0), "sum"});
  HashAggExecutor agg(std::move(values), {}, std::move(aggs), {"count", "sum"},
                      std::vector<TypeId>(2, TypeId::kNull));
  auto out = Drain(&agg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt64(), 2);   // COUNT skips NULL
  EXPECT_EQ(out[0][1].AsInt64(), 20);  // SUM skips NULL
}

TEST(ExecutorTest, SortIsStableAndOrdersDescending) {
  auto values = IntRows({{1, 0}, {3, 1}, {1, 2}, {2, 3}}, {"k", "seq"});
  std::vector<SortKey> keys;
  keys.push_back({Col(0), /*descending=*/false});
  SortExecutor sort(std::move(values), std::move(keys));
  auto rows = Drain(&sort);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[0][1].AsInt64(), 0);  // stable: first 1 stays first
  EXPECT_EQ(rows[1][1].AsInt64(), 2);
  EXPECT_EQ(rows[3][0].AsInt64(), 3);
}

TEST(ExecutorTest, LimitAndOffset) {
  auto values = IntRows({{1}, {2}, {3}, {4}, {5}}, {"a"});
  LimitExecutor limit(std::move(values), /*limit=*/2, /*offset=*/1);
  auto rows = Drain(&limit);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2);
  EXPECT_EQ(rows[1][0].AsInt64(), 3);
}

TEST(ExecutorTest, DistinctRemovesDuplicatesPreservingOrder) {
  auto values = IntRows({{2}, {1}, {2}, {3}, {1}}, {"a"});
  DistinctExecutor distinct(std::move(values));
  auto rows = Drain(&distinct);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt64(), 2);
  EXPECT_EQ(rows[1][0].AsInt64(), 1);
  EXPECT_EQ(rows[2][0].AsInt64(), 3);
}

TEST(ExecutorTest, MaterializeIsRepeatable) {
  auto values = IntRows({{1}, {2}}, {"a"});
  MaterializeExecutor mat(std::move(values));
  ExecContext ctx;
  ASSERT_TRUE(mat.Init(ctx).ok());
  Row row;
  int count = 0;
  while (true) {
    auto more = mat.Next(&row, ctx);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    count++;
  }
  // Re-init and drain again (nested-loop inner side behaviour).
  ASSERT_TRUE(mat.Init(ctx).ok());
  while (true) {
    auto more = mat.Next(&row, ctx);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    count++;
  }
  EXPECT_EQ(count, 4);
}

TEST(ExecutorTest, ScansAgainstRealTable) {
  PageStore store;
  BufferPool pool(&store, 256);
  Catalog catalog(&pool, 16ull * 1024 * 1024);
  Schema schema;
  schema.AddColumn(Column{"id", TypeId::kInt64, false});
  schema.AddColumn(Column{"v", TypeId::kInt32, false});
  auto table = catalog.CreateTable("t", std::move(schema));
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 100; ++i) {
    std::string image;
    ASSERT_TRUE(
        (*table)->codec->Encode({Value::Int64(i), Value::Int32(7)}, &image).ok());
    ASSERT_TRUE((*table)->heap->Insert(image).ok());
  }
  auto idx = catalog.CreateIndex("t", "ux", {"id"}, true);
  ASSERT_TRUE(idx.ok());

  SeqScanExecutor scan(*table, nullptr);
  auto rows = Drain(&scan);
  EXPECT_EQ(rows.size(), 100u);

  std::vector<ExprPtr> prefix;
  prefix.push_back(Lit(Value::Int64(42)));
  IndexScanExecutor iscan(*table, *idx, std::move(prefix), nullptr);
  auto hit = Drain(&iscan);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0][0].AsInt64(), 42);
}

TEST(ExecutorTest, IndexNestedLoopJoinAgainstRealTable) {
  PageStore store;
  BufferPool pool(&store, 256);
  Catalog catalog(&pool, 16ull * 1024 * 1024);
  Schema schema;
  schema.AddColumn(Column{"k", TypeId::kInt64, false});
  schema.AddColumn(Column{"v", TypeId::kString, false});
  auto table = catalog.CreateTable("r", std::move(schema));
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 20; ++i) {
    std::string image;
    ASSERT_TRUE((*table)
                    ->codec
                    ->Encode({Value::Int64(i % 4),
                              Value::String("v" + std::to_string(i))},
                             &image)
                    .ok());
    ASSERT_TRUE((*table)->heap->Insert(image).ok());
  }
  auto idx = catalog.CreateIndex("r", "ix", {"k"}, false);
  ASSERT_TRUE(idx.ok());

  auto left = IntRows({{0}, {3}}, {"probe"});
  std::vector<ExprPtr> keys;
  keys.push_back(Col(0));
  IndexNestedLoopJoinExecutor join(std::move(left), *table, *idx,
                                   std::move(keys), nullptr);
  auto rows = Drain(&join);
  EXPECT_EQ(rows.size(), 10u);  // 5 rows per key value
}

}  // namespace
}  // namespace mtdb
