// Concurrency stress over the session engine: many worker threads,
// mixed tenants, every schema-mapping layout. Each layout is checked
// for row-count consistency per tenant and then audited with the static
// mapping verifier (layout audit + isolation lint), so a latching bug
// that leaks rows across tenants fails the test even if no crash or
// sanitizer report occurs. The whole binary runs under
// MTDB_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lockdep.h"
#include "analysis/verifier.h"
#include "common/metrics.h"
#include "core/tenant_session.h"
#include "engine/session.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace {

using mapping::AppSchema;
using mapping::FigureFourSchema;
using mapping::LayoutKind;
using mapping::LayoutKindName;
using mapping::MakeLayout;
using mapping::SchemaMapping;
using mapping::TenantSession;

constexpr int kThreads = 8;
constexpr int kTenants = 4;
constexpr int kRowsPerThread = 25;

class LayoutConcurrencyTest : public ::testing::TestWithParam<LayoutKind> {};

// 8 sessions hammer a shared layout with tenant-mixed inserts and
// reads; afterwards every tenant must see exactly its own rows.
TEST_P(LayoutConcurrencyTest, MixedTenantSessionsStaySerializable) {
  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout = MakeLayout(GetParam(), &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w]() {
      // Two workers share each tenant, so per-tenant row-id assignment
      // is contended as well as the shared physical tables.
      TenantSession session =
          layout->OpenSession(static_cast<TenantId>(w % kTenants));
      for (int i = 0; i < kRowsPerThread; ++i) {
        int64_t aid = static_cast<int64_t>(w) * 1000 + i;
        auto st = session.Execute(
            "INSERT INTO account (aid, name) VALUES (?, ?)",
            {Value::Int64(aid), Value::String("w" + std::to_string(w))});
        if (!st.ok()) errors.fetch_add(1);
        if (i % 5 == 0) {
          auto r = session.Query("SELECT COUNT(*) FROM account");
          if (!r.ok()) errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(errors.load(), 0);

  // Row counts: every tenant sees exactly the rows its two workers
  // wrote — no losses, no cross-tenant leaks.
  constexpr int kExpected = kRowsPerThread * (kThreads / kTenants);
  for (TenantId t = 0; t < kTenants; ++t) {
    TenantSession session = layout->OpenSession(t);
    auto count = session.Query("SELECT COUNT(*) FROM account");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count->rows[0][0].AsInt64(), kExpected)
        << "tenant " << t << " on layout " << LayoutKindName(GetParam());
    // Each worker's rows are distinguishable by name; both workers of
    // this tenant must be fully present.
    auto names = session.Query(
        "SELECT name, COUNT(*) FROM account GROUP BY name ORDER BY name");
    ASSERT_TRUE(names.ok());
    ASSERT_EQ(names->rows.size(), 2u);
    for (const Row& row : names->rows) {
      EXPECT_EQ(row[1].AsInt64(), kRowsPerThread);
    }
  }

  // Tenant isolation, checked structurally: the static verifier audits
  // every (tenant, table) mapping and lints the emitted physical
  // queries. Runs single-threaded after the workers join (the verifier
  // requires a quiescent layout).
  analysis::Verifier verifier(layout.get());
  analysis::VerifyOptions options;
  options.audit_layout = true;
  options.lint_queries = true;
  options.probe_dml = false;  // probes mutate data; row counts above matter
  auto diagnostics = verifier.Run(options);
  ASSERT_TRUE(diagnostics.ok()) << diagnostics.status().ToString();
  EXPECT_FALSE(analysis::HasErrors(*diagnostics))
      << analysis::FormatDiagnostics(*diagnostics);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutConcurrencyTest,
                         ::testing::Values(LayoutKind::kBasic,
                                           LayoutKind::kPrivate,
                                           LayoutKind::kExtension,
                                           LayoutKind::kUniversal,
                                           LayoutKind::kPivot,
                                           LayoutKind::kChunk,
                                           LayoutKind::kVertical,
                                           LayoutKind::kChunkFolding),
                         [](const ::testing::TestParamInfo<LayoutKind>& info) {
                           return LayoutKindName(info.param);
                         });

// DDL (admin operations) racing DML: workers keep inserting while the
// main thread enables extensions, which rebuilds mappings under the
// exclusive layer latch.
TEST(ConcurrencyStressTest, AdminOpsRaceStatements) {
  AppSchema app = FigureFourSchema();
  Database db;
  std::unique_ptr<SchemaMapping> layout =
      MakeLayout(LayoutKind::kExtension, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }

  // Workers run a BOUNDED batch of inserts: std::shared_mutex makes no
  // fairness promise, so an unbounded insert loop could starve the
  // admin thread's exclusive acquisition forever on a reader-preferring
  // implementation. The admin ops still overlap the insert stream; they
  // are simply guaranteed to get their turn once it drains.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w]() {
      TenantSession session =
          layout->OpenSession(static_cast<TenantId>(w % kTenants));
      for (int i = 0; i < 300; ++i) {
        auto st = session.Execute(
            "INSERT INTO account (aid, name) VALUES (?, 'x')",
            {Value::Int64(static_cast<int64_t>(w) * 100000 + i)});
        if (!st.ok()) errors.fetch_add(1);
      }
    });
  }
  // Admin thread: serial extension enables while statements fly.
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->EnableExtension(t, "healthcare").ok());
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);

  // After the dust settles the extension column must be usable.
  TenantSession session = layout->OpenSession(0);
  ASSERT_TRUE(session
                  .Execute("INSERT INTO account (aid, name, hospital, beds) "
                           "VALUES (999991, 'post', 'General', 12)")
                  .ok());
  auto r = session.Query(
      "SELECT beds FROM account WHERE aid = 999991");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt32(), 12);
}

// The SampleSet contract under threads: one private set per worker,
// Merge strictly after join. The merged set must hold every sample.
TEST(ConcurrencyStressTest, SampleSetPerWorkerMerge) {
  constexpr int kWorkers = 8;
  constexpr int kSamples = 10000;
  std::vector<SampleSet> partials(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < kSamples; ++i) {
        partials[w].Add(static_cast<double>(w * kSamples + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SampleSet merged;
  for (const SampleSet& partial : partials) merged.Merge(partial);
  EXPECT_EQ(merged.count(), static_cast<size_t>(kWorkers * kSamples));
  EXPECT_DOUBLE_EQ(merged.Min(), 0.0);
  EXPECT_DOUBLE_EQ(merged.Max(),
                   static_cast<double>(kWorkers * kSamples - 1));
  // The merged quantiles see the global distribution, not one worker's.
  EXPECT_GT(merged.Quantile(0.95), static_cast<double>(7 * kSamples));
}

// Runs last in this binary: under an instrumented build
// (-DMTDB_LOCKDEP=ON) every test above must have left the lockdep
// registry empty — no latch-order or WAL-protocol violations anywhere
// in the suite's workload.
TEST(LockdepCleanliness, NoViolationsAcrossSuite) {
  if (!analysis::LockdepCompiledIn()) {
    GTEST_SKIP() << "validator not compiled in (build with MTDB_LOCKDEP)";
  }
  std::vector<analysis::Diagnostic> diagnostics =
      analysis::DrainLockdepDiagnostics();
  EXPECT_TRUE(diagnostics.empty()) << analysis::FormatDiagnostics(diagnostics);
}

}  // namespace
}  // namespace mtdb
