#include "core/undo_log.h"

#include "common/deadline.h"
#include "sql/printer.h"

namespace mtdb {
namespace mapping {

namespace {
// A compensation that keeps failing transiently is retried this many
// times on top of the buffer pool's own per-I/O retries.
constexpr int kRollbackAttempts = 4;
}  // namespace

StatementUndoLog::~StatementUndoLog() {
  if (txn_open_) (void)db_->EndDurableTxn(txn_id_);
  if (joined_) ctx_->Leave();
}

Status StatementUndoLog::Stage(sql::Statement compensation) {
  if (ctx_ != nullptr) {
    // Bound to a client transaction: hints ride the transaction's WAL
    // bracket (no statement-scoped kTxnBegin), and the Join tells the
    // engine DML path underneath not to stage its own value-based
    // compensations on top of these row-precise ones.
    if (!joined_) {
      ctx_->Join();
      joined_ = true;
    }
    MTDB_RETURN_IF_ERROR(ctx_->StageHint(compensation));
  } else if (db_->durable()) {
    if (!txn_open_) {
      MTDB_ASSIGN_OR_RETURN(txn_id_, db_->BeginDurableTxn());
      txn_open_ = true;
    }
    MTDB_RETURN_IF_ERROR(db_->LogTxnHint(txn_id_, sql::ToSql(compensation)));
  }
  staged_.push_back(std::move(compensation));
  return Status::OK();
}

void StatementUndoLog::Commit() {
  for (auto& s : staged_) entries_.push_back(std::move(s));
  staged_.clear();
}

Status StatementUndoLog::Rollback() {
  // Compensations must run to completion even when the statement being
  // rolled back was cancelled by its deadline — a half-undone statement
  // is exactly what this log exists to prevent.
  deadline::Scope no_deadline(deadline::Deadline::None());
  staged_.clear();
  Status first_error = Status::OK();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Status st = Status::OK();
    for (int attempt = 0; attempt < kRollbackAttempts; ++attempt) {
      Result<int64_t> n = db_->ExecuteAst(*it, {});
      st = n.status();
      if (st.ok()) break;
    }
    if (st.ok()) {
      executed_++;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  entries_.clear();
  return first_error;
}

Status StatementUndoLog::Finish() {
  if (ctx_ != nullptr) {
    // The statement succeeded (or already rolled itself back, leaving
    // entries_ empty): its confirmed compensations become part of the
    // client transaction's undo log instead of being discarded.
    if (!entries_.empty()) {
      ctx_->Absorb(std::move(entries_));
      entries_.clear();
    }
    if (joined_) {
      ctx_->Leave();
      joined_ = false;
    }
    return Status::OK();
  }
  if (!txn_open_) return Status::OK();
  txn_open_ = false;
  return db_->EndDurableTxn(txn_id_);
}

}  // namespace mapping
}  // namespace mtdb
