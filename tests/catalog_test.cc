#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace mtdb {
namespace {

Schema TwoColumnSchema() {
  Schema schema;
  schema.AddColumn(Column{"id", TypeId::kInt64, true});
  schema.AddColumn(Column{"name", TypeId::kString, false});
  return schema;
}

class CatalogTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBudget = 4ull * 1024 * 1024;  // 4 MB
  CatalogTest()
      : store_(kDefaultPageSize),
        pool_(&store_, kBudget / kDefaultPageSize),
        catalog_(&pool_, kBudget) {}

  PageStore store_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  auto info = catalog_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->name, "t");
  EXPECT_NE(catalog_.GetTable("t"), nullptr);
  EXPECT_NE(catalog_.GetTable("T"), nullptr);  // case-insensitive
  EXPECT_EQ(catalog_.GetTable("missing"), nullptr);
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColumnSchema()).ok());
  EXPECT_EQ(catalog_.CreateTable("T", TwoColumnSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, MetadataChargeShrinksBufferPool) {
  size_t before = pool_.capacity();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        catalog_.CreateTable("t" + std::to_string(i), TwoColumnSchema()).ok());
  }
  size_t after = pool_.capacity();
  // 100 tables at >= 4 KB each must cost at least 400 KB => 50+ frames.
  EXPECT_LT(after, before);
  EXPECT_GE(before - after, 100u * 4096 / kDefaultPageSize);
  EXPECT_GE(catalog_.metadata_bytes(), 100u * 4096);
}

TEST_F(CatalogTest, DropTableRefundsMetadata) {
  size_t initial = pool_.capacity();
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColumnSchema()).ok());
  ASSERT_TRUE(catalog_.DropTable("t").ok());
  EXPECT_EQ(pool_.capacity(), initial);
  EXPECT_EQ(catalog_.metadata_bytes(), 0u);
}

TEST_F(CatalogTest, CreateIndexAndBackfill) {
  auto info = catalog_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(info.ok());
  TableInfo* table = *info;
  // Insert rows before the index exists.
  for (int i = 0; i < 10; ++i) {
    Row row{Value::Int64(i), Value::String("n" + std::to_string(i))};
    std::string image;
    ASSERT_TRUE(table->codec->Encode(row, &image).ok());
    ASSERT_TRUE(table->heap->Insert(image).ok());
  }
  auto idx = catalog_.CreateIndex("t", "ix_t_id", {"id"}, /*unique=*/true);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->tree->entry_count(), 10u);
}

TEST_F(CatalogTest, UniqueBackfillDetectsDuplicates) {
  auto info = catalog_.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(info.ok());
  TableInfo* table = *info;
  for (int i = 0; i < 2; ++i) {
    Row row{Value::Int64(7), Value::String("dup")};
    std::string image;
    ASSERT_TRUE(table->codec->Encode(row, &image).ok());
    ASSERT_TRUE(table->heap->Insert(image).ok());
  }
  EXPECT_EQ(
      catalog_.CreateIndex("t", "ux", {"id"}, /*unique=*/true).status().code(),
      StatusCode::kConstraintViolation);
}

TEST_F(CatalogTest, FindIndexOnPrefix) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColumnSchema()).ok());
  ASSERT_TRUE(catalog_.CreateIndex("t", "ix", {"id", "name"}, false).ok());
  TableInfo* table = catalog_.GetTable("t");
  EXPECT_NE(table->FindIndexOnPrefix({0}), nullptr);
  EXPECT_NE(table->FindIndexOnPrefix({0, 1}), nullptr);
  EXPECT_EQ(table->FindIndexOnPrefix({1}), nullptr);
}

TEST_F(CatalogTest, DropIndex) {
  ASSERT_TRUE(catalog_.CreateTable("t", TwoColumnSchema()).ok());
  ASSERT_TRUE(catalog_.CreateIndex("t", "ix", {"id"}, false).ok());
  EXPECT_EQ(catalog_.index_count(), 1u);
  ASSERT_TRUE(catalog_.DropIndex("ix").ok());
  EXPECT_EQ(catalog_.index_count(), 0u);
  EXPECT_EQ(catalog_.DropIndex("ix").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, BudgetExhaustionFloorsAtOneFrame) {
  // Enough tables to exceed the whole 4 MB budget.
  for (int i = 0; i < 1100; ++i) {
    ASSERT_TRUE(
        catalog_.CreateTable("t" + std::to_string(i), TwoColumnSchema()).ok());
  }
  EXPECT_GE(catalog_.metadata_bytes(), kBudget);
  EXPECT_EQ(pool_.capacity(), 1u);
}

TEST(SchemaTest, FindIsCaseInsensitive) {
  Schema s;
  s.AddColumn(Column{"Name", TypeId::kString, false});
  EXPECT_TRUE(s.Find("name").has_value());
  EXPECT_TRUE(s.Find("NAME").has_value());
  EXPECT_FALSE(s.Find("other").has_value());
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s;
  s.AddColumn(Column{"id", TypeId::kInt64, true});
  s.AddColumn(Column{"name", TypeId::kString, false});
  EXPECT_EQ(s.ToString(), "id BIGINT NOT NULL, name VARCHAR");
}

}  // namespace
}  // namespace mtdb
