#include "sql/ast_util.h"

namespace mtdb {
namespace sql {

std::unique_ptr<InsertStmt> CloneInsert(const InsertStmt& stmt) {
  auto out = std::make_unique<InsertStmt>();
  out->table = stmt.table;
  out->columns = stmt.columns;
  out->rows.reserve(stmt.rows.size());
  for (const auto& row : stmt.rows) {
    std::vector<ParsedExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out->rows.push_back(std::move(cloned));
  }
  return out;
}

std::unique_ptr<UpdateStmt> CloneUpdate(const UpdateStmt& stmt) {
  auto out = std::make_unique<UpdateStmt>();
  out->table = stmt.table;
  for (const auto& [col, expr] : stmt.assignments) {
    out->assignments.emplace_back(col, expr->Clone());
  }
  if (stmt.where != nullptr) out->where = stmt.where->Clone();
  return out;
}

std::unique_ptr<DeleteStmt> CloneDelete(const DeleteStmt& stmt) {
  auto out = std::make_unique<DeleteStmt>();
  out->table = stmt.table;
  if (stmt.where != nullptr) out->where = stmt.where->Clone();
  return out;
}

Statement CloneStatement(const Statement& stmt) {
  Statement out;
  out.kind = stmt.kind;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      out.select = stmt.select->Clone();
      break;
    case StatementKind::kInsert:
      out.insert = CloneInsert(*stmt.insert);
      break;
    case StatementKind::kUpdate:
      out.update = CloneUpdate(*stmt.update);
      break;
    case StatementKind::kDelete:
      out.del = CloneDelete(*stmt.del);
      break;
    case StatementKind::kCreateTable:
      out.create_table = std::make_unique<CreateTableStmt>(*stmt.create_table);
      break;
    case StatementKind::kCreateIndex:
      out.create_index = std::make_unique<CreateIndexStmt>(*stmt.create_index);
      break;
    case StatementKind::kDropTable:
      out.drop_table = std::make_unique<DropTableStmt>(*stmt.drop_table);
      break;
    case StatementKind::kDropIndex:
      out.drop_index = std::make_unique<DropIndexStmt>(*stmt.drop_index);
      break;
  }
  return out;
}

void ForEachSelectScope(const SelectStmt& stmt,
                        const std::function<void(const SelectStmt&)>& fn) {
  fn(stmt);
  for (const TableRef& ref : stmt.from) {
    if (ref.is_subquery()) ForEachSelectScope(*ref.subquery, fn);
  }
}

void CollectConjuncts(const ParsedExpr* e,
                      std::vector<const ParsedExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == PExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void ForEachExprNode(const ParsedExpr& e,
                     const std::function<void(const ParsedExpr&)>& fn) {
  fn(e);
  if (e.left != nullptr) ForEachExprNode(*e.left, fn);
  if (e.right != nullptr) ForEachExprNode(*e.right, fn);
  for (const auto& a : e.args) ForEachExprNode(*a, fn);
}

void ForEachScopeExpr(const SelectStmt& scope,
                      const std::function<void(const ParsedExpr&)>& fn) {
  for (const SelectItem& item : scope.items) {
    if (item.expr != nullptr) ForEachExprNode(*item.expr, fn);
  }
  if (scope.where != nullptr) ForEachExprNode(*scope.where, fn);
  for (const auto& g : scope.group_by) ForEachExprNode(*g, fn);
  if (scope.having != nullptr) ForEachExprNode(*scope.having, fn);
  for (const OrderItem& o : scope.order_by) ForEachExprNode(*o.expr, fn);
}

ColumnEqualsLiteral MatchColumnEqualsLiteral(const ParsedExpr& e) {
  ColumnEqualsLiteral out;
  if (e.kind != PExprKind::kBinary || e.binary_op != BinaryOp::kEq) return out;
  const ParsedExpr* l = e.left.get();
  const ParsedExpr* r = e.right.get();
  if (l->kind == PExprKind::kColumnRef && r->kind == PExprKind::kLiteral) {
    out.column = l;
    out.literal = r;
  } else if (r->kind == PExprKind::kColumnRef &&
             l->kind == PExprKind::kLiteral) {
    out.column = r;
    out.literal = l;
  }
  return out;
}

ColumnEqualsColumn MatchColumnEqualsColumn(const ParsedExpr& e) {
  ColumnEqualsColumn out;
  if (e.kind != PExprKind::kBinary || e.binary_op != BinaryOp::kEq) return out;
  if (e.left->kind == PExprKind::kColumnRef &&
      e.right->kind == PExprKind::kColumnRef) {
    out.left = e.left.get();
    out.right = e.right.get();
  }
  return out;
}

}  // namespace sql
}  // namespace mtdb
