#include "engine/session.h"

#include "sql/ast_util.h"
#include "sql/parser.h"

namespace mtdb {

Session::Session(Database* db) : db_(db) {
  if (trace::TracingForced()) EnableTracing();
}

void Session::EnableTracing(bool on) {
  if (tracer_ == nullptr && db_ != nullptr) {
    tracer_ =
        std::make_unique<trace::StatementTracer>(db_->metrics_registry());
  }
  if (tracer_ != nullptr) tracer_->set_enabled(on);
}

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const Params& params) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const Params& params) {
  return ExecuteParsed(stmt, params);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const Params& params) {
  return ExecuteParsed(prepared.statement(), params);
}

Result<StatementResult> Session::Execute(const std::string& sql,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, params, deadline);
}

Result<StatementResult> Session::Execute(const sql::Statement& stmt,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  return ExecuteParsed(stmt, params, deadline);
}

Result<StatementResult> Session::Execute(const PreparedStatement& prepared,
                                         const Params& params,
                                         deadline::Deadline deadline) {
  return ExecuteParsed(prepared.statement(), params, deadline);
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const Params& params,
                                   deadline::Deadline deadline) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params, deadline));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) const {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return PreparedStatement(std::move(stmt));
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const Params& params) {
  MTDB_ASSIGN_OR_RETURN(StatementResult res, Execute(sql, params));
  if (!HasRows(res)) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  return std::move(std::get<QueryResult>(res));
}

Status Session::InsertRow(const std::string& table, const Row& row) {
  sql::Statement stmt;
  stmt.kind = sql::StatementKind::kInsert;
  stmt.insert = std::make_unique<sql::InsertStmt>();
  stmt.insert->table = table;
  std::vector<sql::ParsedExprPtr> values;
  values.reserve(row.size());
  for (const Value& v : row) values.push_back(sql::MakeLiteral(v));
  stmt.insert->rows.push_back(std::move(values));
  MTDB_ASSIGN_OR_RETURN(StatementResult res, ExecuteParsed(stmt, {}));
  (void)res;
  return Status::OK();
}

Result<StatementResult> Session::ExecuteParsed(const sql::Statement& stmt,
                                               const Params& params,
                                               deadline::Deadline deadline) {
  if (db_ == nullptr) return Status::InvalidArgument("session is closed");
  statements_++;
  // An explicit deadline shadows any ambient one for this statement; an
  // inactive argument re-installs the ambient deadline (no-op).
  deadline::Scope scope(deadline.active ? deadline : deadline::Current());
  Result<StatementResult> res = ExecuteAdmitted(stmt, params);
  if (!res.ok() && res.status().code() == StatusCode::kDeadlineExceeded) {
    db_->metrics_registry()->GetCounter("deadline.exceeded")->Add(1);
  }
  return res;
}

Result<StatementResult> Session::ExecuteAdmitted(const sql::Statement& stmt,
                                                 const Params& params) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    AdmissionTicket ticket;
    MTDB_RETURN_IF_ERROR(db_->admission()->Admit(
        kEngineTenant, deadline::Current(), &ticket));
    return db_->RunStatement(stmt, params);
  }
  tracer_->BeginStatement(/*tenant=*/-1, "engine", sql::KindLabel(stmt.kind));
  Result<StatementResult> res = [&]() -> Result<StatementResult> {
    trace::TracerScope scope(tracer_.get());
    AdmissionTicket ticket;
    {
      trace::SpanScope admit("admit", "engine");
      MTDB_RETURN_IF_ERROR(db_->admission()->Admit(
          kEngineTenant, deadline::Current(), &ticket));
    }
    return db_->RunStatement(stmt, params);
  }();
  tracer_->EndStatement(res.ok());
  return res;
}

}  // namespace mtdb
