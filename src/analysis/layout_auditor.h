#ifndef MTDB_ANALYSIS_LAYOUT_AUDITOR_H_
#define MTDB_ANALYSIS_LAYOUT_AUDITOR_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "core/layout.h"
#include "core/table_mapping.h"

namespace mtdb {
namespace analysis {

/// True when a physical slot of type `physical` can hold every value of
/// a logical column of type `logical` without loss (the width lattice of
/// the paper's generic structures: VARCHAR holds anything via casts,
/// BIGINT holds the int-like types, DOUBLE holds the 32-bit numerics).
bool SlotWidthCompatible(TypeId logical, TypeId physical);

/// Everything the auditor needs to check one (tenant, logical table)
/// mapping. Decoupled from SchemaMapping so tests can feed deliberately
/// corrupted mappings.
struct AuditInput {
  TenantId tenant = 0;
  std::string table;
  /// The tenant's effective logical columns, in declaration order.
  std::vector<std::pair<std::string, TypeId>> logical_columns;
  const mapping::TableMapping* mapping = nullptr;
  /// Physical catalog; when null, physical-existence rules are skipped.
  const Catalog* catalog = nullptr;
};

/// Statically audits one TableMapping against the layout invariants of
/// §3–§6: every logical column mapped to exactly one physical slot
/// (L001/L002/L003), slot types width-compatible (L004), no orphan
/// chunks or dangling tables (L005/L006/L012), physical columns present
/// (L007), per-tenant row keys total (L008), shared tables confined by
/// a tenant meta-data conjunct (L009), and partition literals typed to
/// their meta-data columns (L010). Appends findings to `out`.
void AuditMapping(const AuditInput& input, std::vector<Diagnostic>* out);

/// Audits every (registered tenant × logical table) of a live layout.
Result<std::vector<Diagnostic>> AuditLayout(mapping::SchemaMapping* layout);

}  // namespace analysis
}  // namespace mtdb

#endif  // MTDB_ANALYSIS_LAYOUT_AUDITOR_H_
