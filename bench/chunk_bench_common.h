#ifndef MTDB_BENCH_CHUNK_BENCH_COMMON_H_
#define MTDB_BENCH_CHUNK_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/basic_layout.h"
#include "core/chunk_layout.h"
#include "core/layout.h"

namespace mtdb {
namespace bench {

/// The §6.2 test schema: Parent and Child with an id, a foreign key on
/// Child, and 90 data columns evenly split over INTEGER/DATE/VARCHAR.
inline constexpr int kDataColumns = 90;

/// Scaled-down §6.2 data sizes (paper: 10,000 parents x 100 children).
struct ChunkBenchConfig {
  int parents = 400;
  int children_per_parent = 10;
  uint64_t seed = 7;
  /// Widths of the chunk representations to compare (paper: 3..90).
  std::vector<int> widths = {3, 6, 15, 30, 90};
};

/// One schema deployment: either the conventional layout or a Chunk
/// Table layout of a given width (0 = conventional), loaded with data.
struct Deployment {
  std::string label;
  int width = 0;  // 0 => conventional
  std::unique_ptr<Database> db;
  std::unique_ptr<mapping::AppSchema> app;
  std::unique_ptr<mapping::SchemaMapping> layout;
};

/// Builds the parent/child logical schema.
mapping::AppSchema ParentChildSchema();

/// Creates + loads one deployment. width==0 gives the conventional
/// (Basic) layout; otherwise a folded Chunk Table layout of that width.
/// `vertical` selects the unfolded vertical-partitioning variant.
Result<std::unique_ptr<Deployment>> MakeDeployment(
    const ChunkBenchConfig& config, int width, bool vertical = false);

/// The paper's Q2 with `scale` data columns per side:
///   SELECT p.id, p.col1..k, c.col1..k FROM parent p, child c
///   WHERE p.id = c.parent AND p.id = ?
/// `scale` counts the total data columns (split evenly across p and c),
/// matching the paper's "(# of data columns)/2 in Q2's SELECT clause".
std::string BuildQ2(int scale);

/// A grouping variant for the "Additional Tests" experiment:
///   SELECT c.colK, COUNT(*), ... FROM child c GROUP BY c.colK.
std::string BuildGroupingQuery(int scale);

/// Runs `sql` against a deployment `reps` times (optionally cold cache)
/// and returns (mean milliseconds, logical page reads per run).
struct RunResult {
  double mean_ms = 0.0;
  double logical_reads = 0.0;
  double physical_reads = 0.0;
};
Result<RunResult> RunQuery(Deployment* d, const std::string& sql,
                           const std::vector<Value>& params, int reps,
                           bool cold);

/// Data-column name for index i (0-based): int/date/str round-robin,
/// matching ParentChildSchema().
std::string DataColumnName(int i);

}  // namespace bench
}  // namespace mtdb

#endif  // MTDB_BENCH_CHUNK_BENCH_COMMON_H_
