#ifndef MTDB_CORE_LOGICAL_SCHEMA_H_
#define MTDB_CORE_LOGICAL_SCHEMA_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace mtdb {
namespace mapping {

/// A column of a tenant-visible logical table. `indexed` marks columns
/// the application wants index-supported (the paper routes these into
/// indexed generic structures; cf. the two-Pivot-Tables-per-type idea).
struct LogicalColumn {
  std::string name;
  TypeId type = TypeId::kNull;
  bool indexed = false;
};

/// A base table of the application's logical schema (e.g. Account).
struct LogicalTable {
  std::string name;
  std::vector<LogicalColumn> columns;

  std::optional<size_t> Find(const std::string& column) const;
};

/// A named extension: extra columns some tenants attach to a base table
/// (e.g. the health-care extension adds Hospital/Beds to Account).
struct ExtensionDef {
  std::string name;
  std::string base_table;
  std::vector<LogicalColumn> columns;
};

/// The application-wide logical model: base tables plus the catalog of
/// available extensions. Individual tenants opt into extensions.
class AppSchema {
 public:
  Status AddTable(LogicalTable table);
  Status AddExtension(ExtensionDef ext);

  const LogicalTable* FindTable(const std::string& name) const;
  const ExtensionDef* FindExtension(const std::string& name) const;

  const std::vector<LogicalTable>& tables() const { return tables_; }
  const std::vector<ExtensionDef>& extensions() const { return extensions_; }

  /// Extensions declared on `base_table`.
  std::vector<const ExtensionDef*> ExtensionsOf(
      const std::string& base_table) const;

 private:
  std::vector<LogicalTable> tables_;
  std::vector<ExtensionDef> extensions_;
};

/// Which extensions a tenant has enabled. The tenant's view of a base
/// table is the base columns followed by the columns of its enabled
/// extensions for that table, in enable order.
class TenantState {
 public:
  explicit TenantState(TenantId id = 0) : id_(id) {}

  TenantId id() const { return id_; }
  const std::vector<std::string>& extensions() const { return extensions_; }
  bool HasExtension(const std::string& name) const;
  void EnableExtension(const std::string& name);
  void RemoveExtension(const std::string& name);

 private:
  TenantId id_;
  std::vector<std::string> extensions_;
};

/// The effective (base + extensions) schema of one logical table as one
/// tenant sees it.
struct EffectiveTable {
  std::string name;
  std::vector<LogicalColumn> columns;       // base first, then extensions
  std::vector<size_t> extension_boundaries; // start offset of each extension

  std::optional<size_t> Find(const std::string& column) const;
};

/// Computes a tenant's effective view of `table`.
Result<EffectiveTable> EffectiveSchemaOf(const AppSchema& app,
                                         const TenantState& tenant,
                                         const std::string& table);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_LOGICAL_SCHEMA_H_
