// Reproduces the §6.2 "Additional Tests": grouping queries over Chunk
// Tables. Queries on the narrowest chunks can be an order of magnitude
// slower than on conventional tables because every aggregated column
// drags in another aligning join over the whole partition.
#include <cstdio>
#include <cstdlib>

#include "chunk_bench_common.h"

namespace mtdb {
namespace bench {
namespace {

int Main() {
  ChunkBenchConfig config;
  config.parents = 150;
  if (const char* env = std::getenv("MTDB_BENCH_PARENTS")) {
    config.parents = std::atoi(env);
  }
  std::printf("=== Additional Tests: grouping query response times (ms) ===\n");

  std::vector<std::unique_ptr<Deployment>> deployments;
  {
    auto conv = MakeDeployment(config, 0);
    if (!conv.ok()) return 1;
    deployments.push_back(std::move(*conv));
  }
  for (int width : config.widths) {
    auto d = MakeDeployment(config, width);
    if (!d.ok()) return 1;
    deployments.push_back(std::move(*d));
  }

  std::printf("%-10s", "agg cols");
  for (const auto& d : deployments) std::printf(" %12s", d->label.c_str());
  std::printf("\n");

  for (int aggs : {1, 4, 8, 16}) {
    std::printf("%-10d", aggs);
    for (const auto& d : deployments) {
      auto r = RunQuery(d.get(), BuildGroupingQuery(aggs), {}, /*reps=*/3,
                        /*cold=*/false);
      if (!r.ok()) {
        std::fprintf(stderr, "\nquery: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.3f", r->mean_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: the gap between chunk3 and conventional grows\n"
      "with the number of aggregated columns, up to an order of\n"
      "magnitude; wider chunks fill the range in between.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
