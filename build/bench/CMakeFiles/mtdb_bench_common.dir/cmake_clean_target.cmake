file(REMOVE_RECURSE
  "libmtdb_bench_common.a"
)
