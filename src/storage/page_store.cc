#include "storage/page_store.h"

#include <cassert>
#include <chrono>
#include <cstring>

namespace mtdb {

PageId PageStore::Allocate(PageType type) {
  stats_.allocations++;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id].type = type;
    std::memset(pages_[id].image.data(), 0, page_size_);
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(StoredPage{type, std::vector<char>(page_size_, 0)});
  }
  return id;
}

void PageStore::Deallocate(PageId id) {
  assert(id >= 0 && static_cast<size_t>(id) < pages_.size());
  pages_[id].type = PageType::kFree;
  free_list_.push_back(id);
}

void PageStore::Read(PageId id, char* out) {
  assert(IsAllocated(id));
  stats_.physical_reads++;
  if (read_latency_ns_ > 0) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(read_latency_ns_);
    while (std::chrono::steady_clock::now() < until) {
      // Spin: models synchronous device latency without sleeping past it.
    }
  }
  std::memcpy(out, pages_[id].image.data(), page_size_);
}

void PageStore::Write(PageId id, const char* in) {
  assert(IsAllocated(id));
  stats_.physical_writes++;
  std::memcpy(pages_[id].image.data(), in, page_size_);
}

PageType PageStore::TypeOf(PageId id) const {
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) return PageType::kFree;
  return pages_[id].type;
}

bool PageStore::IsAllocated(PageId id) const {
  return id >= 0 && static_cast<size_t>(id) < pages_.size() &&
         pages_[id].type != PageType::kFree;
}

size_t PageStore::allocated_pages() const {
  return pages_.size() - free_list_.size();
}

}  // namespace mtdb
