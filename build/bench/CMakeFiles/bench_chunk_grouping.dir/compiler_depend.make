# Empty compiler generated dependencies file for bench_chunk_grouping.
# This may be replaced when dependencies are built.
