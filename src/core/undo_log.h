#ifndef MTDB_CORE_UNDO_LOG_H_
#define MTDB_CORE_UNDO_LOG_H_

#include <vector>

#include "engine/database.h"
#include "engine/txn_context.h"
#include "sql/ast.h"

namespace mtdb {
namespace mapping {

/// Statement-level undo log for the mapping layer (§6.3's multi-statement
/// DML). A logical INSERT/UPDATE/DELETE fans out into one physical
/// statement per chunk/source; each physical statement is atomic in the
/// engine, but a fault between them would otherwise leave a logical row
/// half-written across its chunks. The generic DML paths therefore stage
/// a compensating physical statement for every physical write before
/// applying it, and replay the confirmed entries in reverse if a later
/// write fails — so the logical statement as a whole either applies or
/// leaves no trace.
///
/// Durable engines extend the same protocol across crashes: the first
/// Stage() opens a WAL logical transaction and every Stage() appends its
/// compensation (as SQL text) as a txn hint BEFORE the forward statement
/// runs, and Finish() closes the transaction. If the process dies between
/// physical statements, recovery finds the transaction open and replays
/// the hints newest-first — the crash-time equivalent of Rollback().
/// Hints precede their forward statements in the log, so every
/// compensation must be idempotent or guarded (recovery probes INSERT
/// compensations for the row before re-inserting).
///
/// Compensations are ordinary physical ASTs (DELETE to undo an INSERT,
/// UPDATE restoring prior values to undo an UPDATE, INSERT re-creating
/// the row images to undo a DELETE) executed through the same engine
/// front door, so they stay atomic themselves and honour the same latch
/// order. Rollback is best-effort: each entry is retried a few times
/// (the engine's buffer pool already absorbs transient faults) and the
/// log keeps going past a failed entry to restore as much as possible.
///
/// Call protocol per physical statement: Stage(compensation) → run the
/// forward statement → Commit() on success. On logical-statement failure
/// call Rollback(); always call Finish() before returning (the destructor
/// closes a leaked transaction best-effort).
///
/// Inside a client transaction (txn::TransactionContext::Current() set
/// by the session layer) the log *binds* to the transaction: Stage()
/// routes each compensation's WAL hint through the transaction's
/// bracket instead of opening a statement-scoped one, and Finish()
/// absorbs the confirmed entries upward into the transaction's undo log
/// so a later ROLLBACK can undo this statement too. Statement-level
/// atomicity is unchanged — a failed statement still rolls back its own
/// entries here, and only what it confirmed survives into the
/// transaction.
///
/// Not thread-safe: one log per in-flight statement, on the stack.
class StatementUndoLog {
 public:
  explicit StatementUndoLog(Database* db)
      : db_(db), ctx_(txn::TransactionContext::Current()) {}
  ~StatementUndoLog();

  StatementUndoLog(const StatementUndoLog&) = delete;
  StatementUndoLog& operator=(const StatementUndoLog&) = delete;

  /// Stages a compensation for the NEXT forward statement (a batched
  /// forward statement stages one compensation per covered row). On a
  /// durable engine this opens the WAL transaction (first call) and
  /// appends the compensation as a txn hint; a failure here means the
  /// hint is not durable and the caller must not run the forward
  /// statement.
  Status Stage(sql::Statement compensation);

  /// Confirms all staged compensations: their forward statement
  /// succeeded, so Rollback() will replay them. No-op if nothing is
  /// staged.
  void Commit();

  /// Replays all confirmed compensations in reverse order (discarding any
  /// un-committed staged entry). Returns the first failure (after
  /// per-entry retries) but attempts every entry.
  Status Rollback();

  /// Closes the WAL transaction, if one was opened. Check the status on
  /// the success path: a durable engine that cannot write the txn-end
  /// record will re-undo the statement after a crash.
  Status Finish();

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True when the log is bound to an ambient client transaction: the
  /// generic DML paths must then record undo for every write (even
  /// single-source ones the statement itself would not need), because
  /// the transaction may roll the statement back later.
  bool bound() const { return ctx_ != nullptr; }

  /// Compensations successfully executed by Rollback().
  uint64_t executed() const { return executed_; }

 private:
  Database* db_;
  txn::TransactionContext* ctx_;
  std::vector<sql::Statement> entries_;
  std::vector<sql::Statement> staged_;
  uint64_t txn_id_ = 0;
  bool txn_open_ = false;
  bool joined_ = false;
  uint64_t executed_ = 0;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_UNDO_LOG_H_
