#ifndef MTDB_CORE_CHUNK_FOLDING_LAYOUT_H_
#define MTDB_CORE_CHUNK_FOLDING_LAYOUT_H_

#include <memory>
#include <set>
#include <string>

#include "core/chunk_partitioner.h"
#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Options for Chunk Folding.
struct ChunkFoldingOptions {
  /// Shape of the shared data chunk table for folded (cold) columns.
  ChunkShape shape = ChunkShape::Uniform(6);
  /// Extensions whose columns are hot enough to deserve their own
  /// conventional extension tables instead of chunks — how the layout
  /// "divides the meta-data budget between application-specific
  /// conventional tables and Chunk Tables". Extensions not listed fold
  /// into the generic chunk tables.
  std::set<std::string> conventional_extensions;
};

/// Figure 4(f) "Chunk Folding" — the paper's contribution. Logical
/// tables are vertically partitioned: the heavily-utilized base columns
/// stay in conventional multi-tenant tables (Extension-Table style,
/// Tenant+Row meta-data), selected hot extensions get conventional
/// extension tables, and everything else folds into a fixed set of
/// generic Chunk Tables, joined on Row as needed.
class ChunkFoldingLayout final : public SchemaMapping {
 public:
  ChunkFoldingLayout(Database* db, const AppSchema* app,
                     ChunkFoldingOptions options = ChunkFoldingOptions())
      : SchemaMapping(db, app), options_(options) {}

  std::string name() const override { return "chunkfolding"; }

  Status Bootstrap() override;

  const ChunkFoldingOptions& options() const { return options_; }

  static std::string DataTableName() { return "fold_chunkdata"; }
  static std::string IndexTableName() { return "fold_chunkidx"; }

 protected:
  Status EnableExtensionImpl(TenantId tenant, const std::string& ext) override;
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
  Status RecoverDerivedState() override;

 private:
  Status EnsureConventionalExtension(const ExtensionDef& def);

  ChunkFoldingOptions options_;
  std::set<std::string> provisioned_exts_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_CHUNK_FOLDING_LAYOUT_H_
