#ifndef MTDB_ENGINE_DATABASE_H_
#define MTDB_ENGINE_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/planner.h"
#include "sql/ast.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace mtdb {

/// Engine configuration. `memory_budget_bytes` is shared between the
/// buffer pool and the catalog's per-table meta-data charge, reproducing
/// the paper's scalability limit on the number of tables.
struct EngineOptions {
  uint64_t memory_budget_bytes = 64ull * 1024 * 1024;
  uint32_t page_size = kDefaultPageSize;
  MetadataCosts metadata_costs;
  PlannerMode planner_mode = PlannerMode::kAdvanced;
  /// Simulated device latency per physical page read (cold-cache shape).
  uint64_t read_latency_ns = 0;
};

/// Result of a SELECT: column names plus materialized rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// Aggregate engine counters (logical/physical I/O, buffer hit ratios).
struct EngineStats {
  BufferPoolStats buffer;
  PageStoreStats store;
  uint64_t metadata_bytes = 0;
  size_t buffer_capacity = 0;
  size_t tables = 0;
  size_t indexes = 0;
};

/// An embedded multi-threadable relational database: the System Under
/// Test substrate on which the schema-mapping layers run. All public
/// methods are serialized by an internal mutex (one statement at a time,
/// like a single-node DB under a connection pool).
class Database {
 public:
  explicit Database(EngineOptions options = EngineOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- SQL front door -----------------------------------------------

  /// Executes any SQL statement. SELECTs return rows; DML returns the
  /// affected-row count in `affected`; DDL returns zero rows.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::vector<Value>& params = {});

  /// Executes a SELECT (string form).
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Executes an already-parsed SELECT (the mapping layer transforms
  /// ASTs directly and skips re-parsing).
  Result<QueryResult> QueryAst(const sql::SelectStmt& stmt,
                               const std::vector<Value>& params = {});

  /// Executes a parsed non-SELECT statement; returns affected rows.
  Result<int64_t> ExecuteAst(const sql::Statement& stmt,
                             const std::vector<Value>& params = {});

  /// Compiles a SELECT and renders the plan (the explain facility).
  Result<std::string> Explain(const std::string& sql);
  Result<std::string> ExplainAst(const sql::SelectStmt& stmt);

  // --- direct DDL/DML helpers ----------------------------------------

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& table, const std::string& index,
                     const std::vector<std::string>& columns, bool unique);

  /// Inserts a full-width row (schema order) into `table`.
  Status InsertRow(const std::string& table, const Row& row);

  // --- observability ---------------------------------------------------

  EngineStats Stats() const;
  void ResetStats();
  /// Flushes and evicts the entire buffer pool (cold-cache experiments).
  void ColdCache();

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  PageStore* page_store() { return store_.get(); }

  PlannerMode planner_mode() const { return options_.planner_mode; }
  void set_planner_mode(PlannerMode mode) { options_.planner_mode = mode; }

  /// The engine-level mutex; exposed so multi-statement client sessions
  /// (the testbed Workers) can group statements if needed.
  std::mutex& big_lock() { return mu_; }

 private:
  Result<int64_t> ExecuteInsert(const sql::InsertStmt& stmt,
                                const ExecContext& ctx);
  Result<int64_t> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                const ExecContext& ctx);
  Result<int64_t> ExecuteDelete(const sql::DeleteStmt& stmt,
                                const ExecContext& ctx);
  Status InsertRowLocked(TableInfo* table, const Row& row);
  Status DeleteRowLocked(TableInfo* table, const Row& row, const Rid& rid);

  EngineOptions options_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  mutable std::mutex mu_;
};

}  // namespace mtdb

#endif  // MTDB_ENGINE_DATABASE_H_
