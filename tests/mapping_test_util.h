#ifndef MTDB_TESTS_MAPPING_TEST_UTIL_H_
#define MTDB_TESTS_MAPPING_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/basic_layout.h"
#include "core/chunk_folding_layout.h"
#include "core/chunk_layout.h"
#include "core/extension_layout.h"
#include "core/pivot_layout.h"
#include "core/private_layout.h"
#include "core/universal_layout.h"

namespace mtdb {
namespace mapping {

/// The paper's running example (Figure 4): an Account table with tenants
/// 17, 35, 42; tenant 17 has the health-care extension, tenant 42 the
/// automotive extension.
inline AppSchema FigureFourSchema() {
  AppSchema app;
  {
    LogicalTable account;
    account.name = "account";
    account.columns = {{"aid", TypeId::kInt64, true},
                       {"name", TypeId::kString, false}};
    Status st = app.AddTable(std::move(account));
    (void)st;
  }
  {
    ExtensionDef health;
    health.name = "healthcare";
    health.base_table = "account";
    health.columns = {{"hospital", TypeId::kString, false},
                      {"beds", TypeId::kInt32, false}};
    Status st = app.AddExtension(std::move(health));
    (void)st;
  }
  {
    ExtensionDef automotive;
    automotive.name = "automotive";
    automotive.base_table = "account";
    automotive.columns = {{"dealers", TypeId::kInt32, false}};
    Status st = app.AddExtension(std::move(automotive));
    (void)st;
  }
  return app;
}

/// Loads the Figure 4 data for a layout that has Bootstrap'ed already.
inline Status LoadFigureFourData(SchemaMapping* layout) {
  MTDB_RETURN_IF_ERROR(layout->CreateTenant(17));
  MTDB_RETURN_IF_ERROR(layout->CreateTenant(35));
  MTDB_RETURN_IF_ERROR(layout->CreateTenant(42));
  MTDB_RETURN_IF_ERROR(layout->EnableExtension(17, "healthcare"));
  MTDB_RETURN_IF_ERROR(layout->EnableExtension(42, "automotive"));
  MTDB_RETURN_IF_ERROR(
      layout
          ->Execute(17,
                    "INSERT INTO account (aid, name, hospital, beds) VALUES "
                    "(1, 'Acme', 'St. Mary', 135), "
                    "(2, 'Gump', 'State', 1042)")
          .status());
  MTDB_RETURN_IF_ERROR(
      layout->Execute(35, "INSERT INTO account (aid, name) VALUES (1, 'Ball')")
          .status());
  MTDB_RETURN_IF_ERROR(
      layout
          ->Execute(42,
                    "INSERT INTO account (aid, name, dealers) VALUES "
                    "(1, 'Big', 65)")
          .status());
  return Status::OK();
}

/// Factory over every layout, for parameterized layout tests.
enum class LayoutKind {
  kBasic,
  kPrivate,
  kExtension,
  kUniversal,
  kPivot,
  kChunk,
  kVertical,
  kChunkFolding,
};

inline const char* LayoutKindName(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kBasic:
      return "basic";
    case LayoutKind::kPrivate:
      return "private";
    case LayoutKind::kExtension:
      return "extension";
    case LayoutKind::kUniversal:
      return "universal";
    case LayoutKind::kPivot:
      return "pivot";
    case LayoutKind::kChunk:
      return "chunk";
    case LayoutKind::kVertical:
      return "vertical";
    case LayoutKind::kChunkFolding:
      return "chunkfolding";
  }
  return "?";
}

inline std::unique_ptr<SchemaMapping> MakeLayout(LayoutKind kind, Database* db,
                                                 const AppSchema* app) {
  switch (kind) {
    case LayoutKind::kBasic:
      return std::make_unique<BasicLayout>(db, app);
    case LayoutKind::kPrivate:
      return std::make_unique<PrivateTableLayout>(db, app);
    case LayoutKind::kExtension:
      return std::make_unique<ExtensionTableLayout>(db, app);
    case LayoutKind::kUniversal:
      return std::make_unique<UniversalTableLayout>(db, app);
    case LayoutKind::kPivot:
      return std::make_unique<PivotTableLayout>(db, app);
    case LayoutKind::kChunk: {
      ChunkLayoutOptions options;
      options.fold = true;
      return std::make_unique<ChunkTableLayout>(db, app, options);
    }
    case LayoutKind::kVertical: {
      ChunkLayoutOptions options;
      options.fold = false;
      return std::make_unique<ChunkTableLayout>(db, app, options);
    }
    case LayoutKind::kChunkFolding:
      return std::make_unique<ChunkFoldingLayout>(db, app);
  }
  return nullptr;
}

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_TESTS_MAPPING_TEST_UTIL_H_
