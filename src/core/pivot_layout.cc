#include "core/pivot_layout.h"

namespace mtdb {
namespace mapping {

std::string PivotTableLayout::PivotName(StorageClass cls) {
  return std::string("pivot_") + StorageClassName(cls);
}

Status PivotTableLayout::Bootstrap() {
  for (int c = 0; c < kNumStorageClasses; ++c) {
    StorageClass cls = static_cast<StorageClass>(c);
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
    schema.AddColumn(Column{"col", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    schema.AddColumn(Column{"val", PhysicalTypeOf(cls), false});
    std::string physical = PivotName(cls);
    MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
    // The partitioned meta-data B-tree (tenant, tbl, col, row).
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_tcr",
                                          {"tenant", "tbl", "col", "row"},
                                          /*unique=*/true));
    // Value index for index-supported lookups (the paper's "one Pivot
    // Table with indexes" variant).
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ix_" + physical + "_val",
                                          {"val", "tenant", "tbl", "col"},
                                          /*unique=*/false));
  }
  return Status::OK();
}

Result<std::unique_ptr<TableMapping>> PivotTableLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  auto mapping = std::make_unique<TableMapping>();
  int32_t tbl = TableNumber(tenant, table);
  for (size_t i = 0; i < eff.columns.size(); ++i) {
    StorageClass cls = StorageClassOf(eff.columns[i].type);
    PhysicalSource source;
    source.physical_table = PivotName(cls);
    source.partition.emplace_back("tenant", Value::Int32(tenant));
    source.partition.emplace_back("tbl", Value::Int32(tbl));
    source.partition.emplace_back("col", Value::Int32(static_cast<int32_t>(i)));
    source.row_column = "row";
    mapping->sources.push_back(std::move(source));

    ColumnTarget target;
    target.source = i;
    target.physical_column = "val";
    target.physical_type = PhysicalTypeOf(cls);
    target.logical_type = eff.columns[i].type;
    mapping->columns[IdentLower(eff.columns[i].name)] = target;
    mapping->column_order.push_back(eff.columns[i].name);
  }
  return mapping;
}

}  // namespace mapping
}  // namespace mtdb
