#ifndef MTDB_CORE_TRANSFORMER_H_
#define MTDB_CORE_TRANSFORMER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/heat.h"
#include "core/table_mapping.h"
#include "sql/ast.h"

namespace mtdb {
namespace mapping {

/// Shape of the SQL the transformer emits.
///  * kNested: the §6.1 compilation scheme verbatim — every logical table
///    reference becomes a derived-table subquery that reconstructs the
///    referenced columns with aligning joins. Correct for optimizers
///    that can unnest (DB2); disastrous for those that cannot (MySQL).
///  * kFlattened: the paper's workaround for less-sophisticated
///    optimizers — the reconstruction joins are inlined into the outer
///    FROM/WHERE ("we must directly generate the flattened queries").
enum class EmitMode { kNested, kFlattened };

/// Conjunct ordering for flattened queries (the Test 1 sensitivity: on
/// MySQL, meta-data-first ordering was 5x slower than an ordering that
/// mimics DB2's plan, which leads with the selective user predicates).
enum class PredicateOrder { kMetadataFirst, kSelectiveFirst };

struct TransformOptions {
  EmitMode emit_mode = EmitMode::kNested;
  PredicateOrder predicate_order = PredicateOrder::kSelectiveFirst;
};

/// Supplies per-(tenant, table) physical mappings and effective logical
/// schemas; implemented by each layout.
class MappingResolver {
 public:
  virtual ~MappingResolver() = default;

  /// The logical columns of `table` as `tenant` sees it, in order, with
  /// types. Fails when the table does not exist for the tenant.
  virtual Result<std::vector<std::pair<std::string, TypeId>>> LogicalColumns(
      TenantId tenant, const std::string& table) = 0;

  /// The physical mapping of (tenant, table).
  virtual Result<const TableMapping*> Mapping(TenantId tenant,
                                              const std::string& table) = 0;
};

/// The §6.1 query-transformation compiler. Given a logical SELECT
/// (written against one tenant's logical schema), produces the physical
/// SELECT over the layout's multi-tenant tables:
///
///   1. collect all table names and the columns used from each,
///   2. look up the Chunk Tables / meta-data identifiers per table,
///   3. generate per-table reconstruction queries (filter meta-data
///      columns, align chunks on Row),
///   4. patch each reconstruction into the logical query.
///
/// SELECT * is expanded against the tenant's logical schema first, so
/// generic-structure columns never leak to the application.
class QueryTransformer {
 public:
  /// `heat` (optional) records which logical columns queries touch, for
  /// the Chunk Folding tuning advisor.
  QueryTransformer(MappingResolver* resolver, TransformOptions options,
                   HeatProfile* heat = nullptr)
      : resolver_(resolver), options_(options), heat_(heat) {}

  /// Transforms a logical SELECT into a physical SELECT.
  Result<std::unique_ptr<sql::SelectStmt>> TransformSelect(
      TenantId tenant, const sql::SelectStmt& stmt);

 private:
  struct LogicalBinding {
    std::string binding;   // alias or table name as written
    std::string table;     // logical table name
    std::vector<std::pair<std::string, TypeId>> columns;
    const TableMapping* mapping;
    std::vector<bool> used;  // referenced columns
  };

  Result<std::vector<LogicalBinding>> BindFrom(TenantId tenant,
                                               const sql::SelectStmt& stmt);
  Status MarkUses(const sql::ParsedExpr& e,
                  std::vector<LogicalBinding>* bindings);
  Result<std::unique_ptr<sql::SelectStmt>> EmitNested(
      TenantId tenant, const sql::SelectStmt& stmt,
      std::vector<LogicalBinding>& bindings);
  Result<std::unique_ptr<sql::SelectStmt>> EmitFlattened(
      TenantId tenant, const sql::SelectStmt& stmt,
      std::vector<LogicalBinding>& bindings);

  MappingResolver* resolver_;
  TransformOptions options_;
  HeatProfile* heat_;
  int fresh_alias_ = 0;
};

/// Builds the §6.1-style reconstruction subquery for one logical table:
/// SELECT <row>, <logical cols (cast as needed)> FROM <chunk sources>
/// WHERE <partition predicates> AND <aligning joins on row>.
/// `needed_sources` selects which chunks participate (those providing a
/// referenced column; at least one).
std::unique_ptr<sql::SelectStmt> BuildReconstruction(
    const TableMapping& mapping, const std::vector<std::string>& columns,
    const std::vector<TypeId>& types, const std::string& row_alias);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_TRANSFORMER_H_
