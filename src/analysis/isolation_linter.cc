#include "analysis/isolation_linter.h"

#include <numeric>
#include <optional>
#include <set>
#include <string>

#include "catalog/schema.h"
#include "sql/ast_util.h"

namespace mtdb {
namespace analysis {

namespace {

using mapping::PhysicalSource;
using sql::ParsedExpr;
using sql::SelectStmt;
using sql::TableRef;

std::string TenantLoc(const LintContext& ctx, const std::string& what) {
  return "tenant " + std::to_string(ctx.tenant) + ", " + what;
}

/// True when the physical table is shared among tenants (carries the
/// "tenant" meta-data column of every shared layout in this codebase).
bool IsSharedTable(const Catalog* catalog, const std::string& table) {
  const TableInfo* info = catalog->GetTable(table);
  return info != nullptr && info->schema.Find("tenant").has_value();
}

/// Does conjunct qualifier `qual` select the table ref named `binding`?
/// An empty qualifier is only unambiguous when the scope has one ref.
bool QualifierMatches(const std::string& qual, const std::string& binding,
                      size_t refs_in_scope) {
  if (qual.empty()) return refs_in_scope == 1;
  return IdentEquals(qual, binding);
}

/// Scans `conjuncts` for `<binding>.tenant = <literal>`. Returns the
/// literal (or nullptr when no such conjunct exists).
const ParsedExpr* FindTenantConjunct(
    const std::vector<const ParsedExpr*>& conjuncts,
    const std::string& binding, size_t refs_in_scope) {
  for (const ParsedExpr* c : conjuncts) {
    sql::ColumnEqualsLiteral eq = sql::MatchColumnEqualsLiteral(*c);
    if (eq.column == nullptr) continue;
    if (!IdentEquals(eq.column->column, "tenant")) continue;
    if (!QualifierMatches(eq.column->table, binding, refs_in_scope)) continue;
    return eq.literal;
  }
  return nullptr;
}

/// I101/I102 for every shared base ref of one SELECT scope.
void LintScopeTenantConjuncts(const LintContext& ctx, const SelectStmt& scope,
                              std::vector<Diagnostic>* out) {
  std::vector<const ParsedExpr*> conjuncts;
  sql::CollectConjuncts(scope.where.get(), &conjuncts);
  size_t base_refs = 0;
  for (const TableRef& ref : scope.from) {
    if (!ref.is_subquery()) base_refs++;
  }
  for (const TableRef& ref : scope.from) {
    if (ref.is_subquery()) continue;
    if (!IsSharedTable(ctx.catalog, ref.table_name)) continue;
    const ParsedExpr* literal =
        FindTenantConjunct(conjuncts, ref.binding_name(), base_refs);
    if (literal == nullptr) {
      out->push_back(Diagnostic{
          Severity::kError, kRuleMissingTenantConjunct,
          TenantLoc(ctx, "SELECT over " + ref.table_name),
          "shared table reference '" + ref.binding_name() +
              "' is not dominated by a tenant conjunct in its scope"});
    } else if (!(literal->literal == Value::Int64(ctx.tenant))) {
      out->push_back(Diagnostic{
          Severity::kError, kRuleWrongTenantLiteral,
          TenantLoc(ctx, "SELECT over " + ref.table_name),
          "tenant conjunct on '" + ref.binding_name() + "' selects tenant " +
              literal->literal.ToString() + ", statement belongs to tenant " +
              std::to_string(ctx.tenant)});
    }
  }
}

/// One base ref matched to a mapping source within a scope.
struct MatchedRef {
  const TableRef* ref;
  size_t source;
};

/// True when every partition conjunct of `source` appears in `conjuncts`
/// qualified for `binding`.
bool RefMatchesSource(const std::vector<const ParsedExpr*>& conjuncts,
                      const std::string& binding, size_t refs_in_scope,
                      const PhysicalSource& source) {
  for (const auto& [col, val] : source.partition) {
    bool found = false;
    for (const ParsedExpr* c : conjuncts) {
      sql::ColumnEqualsLiteral eq = sql::MatchColumnEqualsLiteral(*c);
      if (eq.column == nullptr) continue;
      if (!IdentEquals(eq.column->column, col)) continue;
      if (!QualifierMatches(eq.column->table, binding, refs_in_scope)) continue;
      if (eq.literal->literal == val) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// I103: all mapping sources reconstructed in one scope must be joined
/// into a single row-aligned component.
void LintScopeAlignment(const LintContext& ctx, const SelectStmt& scope,
                        std::vector<Diagnostic>* out) {
  std::vector<const ParsedExpr*> conjuncts;
  sql::CollectConjuncts(scope.where.get(), &conjuncts);
  size_t base_refs = 0;
  for (const TableRef& ref : scope.from) {
    if (!ref.is_subquery()) base_refs++;
  }

  std::vector<MatchedRef> matched;
  std::set<size_t> distinct_sources;
  for (const TableRef& ref : scope.from) {
    if (ref.is_subquery()) continue;
    for (size_t s = 0; s < ctx.mapping->sources.size(); ++s) {
      const PhysicalSource& source = ctx.mapping->sources[s];
      if (!IdentEquals(ref.table_name, source.physical_table)) continue;
      if (!RefMatchesSource(conjuncts, ref.binding_name(), base_refs,
                            source)) {
        continue;
      }
      matched.push_back(MatchedRef{&ref, s});
      distinct_sources.insert(s);
      break;
    }
  }
  if (distinct_sources.size() < 2) return;  // nothing to align

  // Union-find over the matched refs, joined by row-equality conjuncts.
  std::vector<size_t> parent(matched.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto ref_of = [&](const ParsedExpr& col) -> int {
    for (size_t i = 0; i < matched.size(); ++i) {
      const std::string& row_col =
          ctx.mapping->sources[matched[i].source].row_column;
      if (row_col.empty()) continue;
      if (!IdentEquals(col.column, row_col)) continue;
      if (!QualifierMatches(col.table, matched[i].ref->binding_name(),
                            base_refs)) {
        continue;
      }
      return static_cast<int>(i);
    }
    return -1;
  };
  for (const ParsedExpr* c : conjuncts) {
    sql::ColumnEqualsColumn eq = sql::MatchColumnEqualsColumn(*c);
    if (eq.left == nullptr) continue;
    int a = ref_of(*eq.left);
    int b = ref_of(*eq.right);
    if (a < 0 || b < 0 || a == b) continue;
    parent[find(static_cast<size_t>(a))] = find(static_cast<size_t>(b));
  }
  size_t root = find(0);
  for (size_t i = 1; i < matched.size(); ++i) {
    if (find(i) != root) {
      out->push_back(Diagnostic{
          Severity::kError, kRuleUnalignedReconstruction,
          TenantLoc(ctx, "SELECT over " + matched[i].ref->table_name),
          "reconstruction source '" + matched[i].ref->binding_name() +
              "' is not row-aligned with the other chunks of its scope "
              "(missing aligning join on the row column)"});
      return;  // one report per scope is enough
    }
  }
}

}  // namespace

void LintPhysicalSelect(const LintContext& ctx, const SelectStmt& stmt,
                        std::vector<Diagnostic>* out) {
  sql::ForEachSelectScope(stmt, [&](const SelectStmt& scope) {
    LintScopeTenantConjuncts(ctx, scope, out);
    if (ctx.mapping != nullptr) LintScopeAlignment(ctx, scope, out);
  });
}

void LintPhysicalStatement(const LintContext& ctx, const sql::Statement& stmt,
                           std::vector<Diagnostic>* out) {
  const ParsedExpr* where = nullptr;
  std::string table;
  std::string kind;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      LintPhysicalSelect(ctx, *stmt.select, out);
      return;
    case sql::StatementKind::kUpdate:
      where = stmt.update->where.get();
      table = stmt.update->table;
      kind = "UPDATE";
      break;
    case sql::StatementKind::kDelete:
      where = stmt.del->where.get();
      table = stmt.del->table;
      kind = "DELETE";
      break;
    default:
      return;  // INSERT routes by value, DDL carries no predicate
  }
  if (!IsSharedTable(ctx.catalog, table)) return;

  std::vector<const ParsedExpr*> conjuncts;
  sql::CollectConjuncts(where, &conjuncts);
  const ParsedExpr* literal =
      FindTenantConjunct(conjuncts, table, /*refs_in_scope=*/1);
  if (literal == nullptr) {
    out->push_back(Diagnostic{
        Severity::kError, kRuleDmlTenantWidening,
        TenantLoc(ctx, kind + " " + table),
        "Phase (b) " + kind + " on shared table '" + table +
            "' has no tenant conjunct and may widen beyond the "
            "originating tenant"});
  } else if (!(literal->literal == Value::Int64(ctx.tenant))) {
    out->push_back(Diagnostic{
        Severity::kError, kRuleWrongTenantLiteral,
        TenantLoc(ctx, kind + " " + table),
        kind + " confined to tenant " + literal->literal.ToString() +
            " but originates from tenant " + std::to_string(ctx.tenant)});
  }
}

namespace {

/// The tenant rows one physical DML statement locks on a shared table,
/// as far as the statement text proves it. `derived` is false when the
/// statement is not lock-relevant here (SELECT, DDL, private table, or
/// tenant not statically derivable — those are I101/I104 findings).
struct LockFootprint {
  bool derived = false;
  std::vector<Value> tenants;  // distinct tenant literals locked
  std::string describe;        // "UPDATE acct_chunk" etc., for messages
};

void AddTenant(LockFootprint* fp, const Value& v) {
  for (const Value& seen : fp->tenants) {
    if (seen == v) return;
  }
  fp->tenants.push_back(v);
}

LockFootprint DeriveFootprint(const LintContext& ctx,
                              const sql::Statement& stmt) {
  LockFootprint fp;
  const ParsedExpr* where = nullptr;
  std::string table;
  switch (stmt.kind) {
    case sql::StatementKind::kInsert: {
      table = stmt.insert->table;
      if (!IsSharedTable(ctx.catalog, table)) return fp;
      // Position of the tenant column among the insert's value lists.
      std::optional<size_t> pos;
      if (stmt.insert->columns.empty()) {
        const TableInfo* info = ctx.catalog->GetTable(table);
        if (info != nullptr) pos = info->schema.Find("tenant");
      } else {
        for (size_t i = 0; i < stmt.insert->columns.size(); ++i) {
          if (IdentEquals(stmt.insert->columns[i], "tenant")) {
            pos = i;
            break;
          }
        }
      }
      if (!pos.has_value()) return fp;
      fp.describe = "INSERT " + table;
      for (const auto& row : stmt.insert->rows) {
        if (*pos >= row.size()) return LockFootprint{};
        const ParsedExpr& e = *row[*pos];
        if (e.kind != sql::PExprKind::kLiteral) return LockFootprint{};
        fp.derived = true;
        AddTenant(&fp, e.literal);
      }
      return fp;
    }
    case sql::StatementKind::kUpdate:
      where = stmt.update->where.get();
      table = stmt.update->table;
      fp.describe = "UPDATE " + table;
      break;
    case sql::StatementKind::kDelete:
      where = stmt.del->where.get();
      table = stmt.del->table;
      fp.describe = "DELETE " + table;
      break;
    default:
      return fp;  // SELECTs take no row locks here; DDL is out of scope
  }
  if (!IsSharedTable(ctx.catalog, table)) return LockFootprint{};
  std::vector<const ParsedExpr*> conjuncts;
  sql::CollectConjuncts(where, &conjuncts);
  const ParsedExpr* literal =
      FindTenantConjunct(conjuncts, table, /*refs_in_scope=*/1);
  if (literal == nullptr) return LockFootprint{};  // I104's finding
  fp.derived = true;
  AddTenant(&fp, literal->literal);
  return fp;
}

}  // namespace

void LintPhysicalStream(const LintContext& ctx,
                        const std::vector<const sql::Statement*>& stream,
                        std::vector<Diagnostic>* out) {
  bool have_first = false;
  Value first_tenant;
  std::string first_site;
  for (const sql::Statement* stmt : stream) {
    if (stmt == nullptr) continue;
    LockFootprint fp = DeriveFootprint(ctx, *stmt);
    if (!fp.derived) continue;
    for (const Value& t : fp.tenants) {
      if (!have_first) {
        have_first = true;
        first_tenant = t;
        first_site = fp.describe;
        continue;
      }
      if (t == first_tenant) continue;
      out->push_back(Diagnostic{
          Severity::kError, kRuleCrossTenantLockCoupling,
          TenantLoc(ctx, fp.describe),
          "statement locks rows of tenant " + t.ToString() +
              " while its stream already holds row locks of tenant " +
              first_tenant.ToString() + " (from " + first_site +
              "); one logical statement must never couple two tenants' "
              "locks"});
      return;  // one report per stream is enough
    }
  }
}

}  // namespace analysis
}  // namespace mtdb
