#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lockdep.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/chunk_folding_layout.h"
#include "core/private_layout.h"
#include "mapping_test_util.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace mapping {
namespace {

/// Differential soak: a long randomized multi-tenant workload runs on
/// Chunk Folding and on private tables (the reference — it stores rows
/// natively); every logical observation must agree at every checkpoint.
class SoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SoakTest, ChunkFoldingMatchesPrivateReference) {
  AppSchema app = testbed::BuildCrmAppSchema();
  Database fold_db, priv_db;
  ChunkFoldingLayout folded(&fold_db, &app);
  PrivateTableLayout reference(&priv_db, &app);
  ASSERT_TRUE(folded.Bootstrap().ok());
  ASSERT_TRUE(reference.Bootstrap().ok());

  constexpr int kTenants = 3;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(folded.CreateTenant(t).ok());
    ASSERT_TRUE(reference.CreateTenant(t).ok());
  }
  ASSERT_TRUE(folded.EnableExtension(0, "healthcare_account").ok());
  ASSERT_TRUE(reference.EnableExtension(0, "healthcare_account").ok());
  ASSERT_TRUE(folded.EnableExtension(1, "project_opportunity").ok());
  ASSERT_TRUE(reference.EnableExtension(1, "project_opportunity").ok());

  auto both_execute = [&](TenantId t, const std::string& sql,
                          const std::vector<Value>& params = {}) {
    auto a = folded.Execute(t, sql, params);
    auto b = reference.Execute(t, sql, params);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << sql;
  };
  auto both_query_match = [&](TenantId t, const std::string& sql) {
    auto a = folded.Query(t, sql);
    auto b = reference.Query(t, sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      ASSERT_EQ(a->rows[i].size(), b->rows[i].size());
      for (size_t c = 0; c < a->rows[i].size(); ++c) {
        EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0)
            << sql << " row " << i << " col " << c;
      }
    }
  };

  Rng rng(GetParam() * 1000 + 7);
  int64_t next_id = 1;
  std::vector<int64_t> live_ids[kTenants];

  for (int op = 0; op < 250; ++op) {
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
    int kind = static_cast<int>(rng.Uniform(0, 9));
    if (kind < 4) {
      int64_t id = next_id++;
      std::string sql =
          "INSERT INTO account (id, campaign_id, name, status, amount) "
          "VALUES (?, 0, ?, ?, ?)";
      std::vector<Value> params{
          Value::Int64(id), Value::String(rng.Word(3, 9)),
          Value::String(rng.Bernoulli(0.5) ? "open" : "won"),
          Value::Double(static_cast<double>(rng.Uniform(1, 100000)))};
      both_execute(t, sql, params);
      live_ids[t].push_back(id);
    } else if (kind < 6 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t, "UPDATE account SET amount = amount + 1, owner = ? "
                      "WHERE id = ?",
                   {Value::String(rng.Word(3, 8)),
                    Value::Int64(live_ids[t][i])});
    } else if (kind < 7 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t, "DELETE FROM account WHERE id = ?",
                   {Value::Int64(live_ids[t][i])});
      live_ids[t].erase(live_ids[t].begin() + static_cast<ptrdiff_t>(i));
    } else if (kind < 8) {
      both_query_match(t, "SELECT status, COUNT(*), SUM(amount) FROM account "
                          "GROUP BY status ORDER BY status");
    } else {
      both_query_match(t, "SELECT id, name, amount FROM account "
                          "WHERE amount > 50000 ORDER BY id");
    }
    if (op % 50 == 49) {
      // Deep checkpoint: full logical contents per tenant.
      for (TenantId ct = 0; ct < kTenants; ++ct) {
        both_query_match(ct, "SELECT * FROM account ORDER BY id");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3));

/// Concurrency-under-fire soak: eight threads hammer one Chunk Folding
/// layout while a low-rate fault schedule stays armed the whole run.
/// Each thread counts only the statements that reported success; at the
/// end (injection paused) the per-tenant row counts must reconcile with
/// those counters exactly — a failed statement that still inserted, or a
/// successful one that lost a row, shows up as a count drift.
class FaultSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultSoakTest, EightThreadsUnderLowRateFaultsReconcile) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkFoldingLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());

  constexpr int kThreads = 8;
  constexpr int kTenants = 4;
  constexpr int kOpsPerThread = 120;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout.CreateTenant(t).ok());
  }
  ASSERT_TRUE(layout.EnableExtension(0, "healthcare").ok());
  // Low-rate faults are absorbed by retries; the rare statement failure
  // is legitimate, but it must never trip the tenant fence mid-soak.
  layout.set_quarantine_threshold(1'000'000);

  FaultInjector injector(static_cast<uint64_t>(GetParam()) * 31 + 5);
  db.page_store()->set_fault_injector(&injector);
  db.buffer_pool()->SetCapacity(16);  // real I/O under the workload

  FaultSpec low;
  low.probability = 0.02;  // unlimited fires for the whole run
  injector.Arm(FaultPoint::kPageRead, low);
  injector.Arm(FaultPoint::kPageWrite, low);
  FaultSpec torn = low;
  torn.silent = false;
  injector.Arm(FaultPoint::kTornWrite, torn);
  injector.Arm(FaultPoint::kBitFlip, low);

  std::atomic<int64_t> expected_rows[kTenants] = {};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(static_cast<uint64_t>(GetParam()) * 9973 +
              static_cast<uint64_t>(w) * 131 + 1);
      // Disjoint aid space per thread: no cross-thread logical conflicts.
      int64_t next_aid = static_cast<int64_t>(w + 1) * 1'000'000;
      std::vector<std::pair<TenantId, int64_t>> own;
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (op % 16 == w) {
          // Lazy DDL inside the layout recharges the pool; shrink it
          // back and flush so the workload keeps meeting the injector.
          db.buffer_pool()->SetCapacity(16);
          (void)db.buffer_pool()->EvictAll();
        }
        TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
        int kind = static_cast<int>(rng.Uniform(0, 9));
        if (kind < 4) {
          int64_t aid = next_aid++;
          auto r = layout.Execute(
              t, "INSERT INTO account (aid, name) VALUES (?, ?)",
              {Value::Int64(aid), Value::String(rng.Word(3, 8))});
          if (r.ok()) {
            expected_rows[t].fetch_add(1, std::memory_order_relaxed);
            own.emplace_back(t, aid);
          }
        } else if (kind < 6 && !own.empty()) {
          auto& [t2, aid] = own[static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(own.size()) - 1))];
          (void)layout.Execute(t2,
                               "UPDATE account SET name = ? WHERE aid = ?",
                               {Value::String(rng.Word(3, 8)),
                                Value::Int64(aid)});
        } else if (kind < 8 && !own.empty()) {
          size_t i = static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(own.size()) - 1));
          auto [t2, aid] = own[i];
          auto r = layout.Execute(t2, "DELETE FROM account WHERE aid = ?",
                                  {Value::Int64(aid)});
          if (r.ok()) {
            expected_rows[t2].fetch_sub(1, std::memory_order_relaxed);
            own.erase(own.begin() + static_cast<ptrdiff_t>(i));
          }
        } else {
          (void)layout.Query(t, "SELECT COUNT(*) FROM account");
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // The schedule must actually have fired to make this a fault soak.
  IoFaultCountersSnapshot io = db.Stats().io_faults;
  EXPECT_GT(io.read_faults + io.write_faults + io.checksum_failures, 0u);

  FaultInjectorPause pause(&injector);
  for (TenantId t = 0; t < kTenants; ++t) {
    auto r = layout.Query(t, "SELECT COUNT(*) FROM account");
    ASSERT_TRUE(r.ok()) << "tenant " << t << ": " << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsInt64(),
              expected_rows[t].load(std::memory_order_relaxed))
        << "tenant " << t << ": row count drifted under faults";
  }
  db.page_store()->set_fault_injector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakTest, ::testing::Values(1, 2, 3));

/// Durable differential soak with one mid-run crash/reopen cycle: a
/// durable Chunk Folding engine runs the randomized CRM workload against
/// an in-memory private-table reference. Halfway through, an injected
/// kCrash kills the durable engine mid-statement; it is reopened from
/// disk (checkpoint + WAL replay + txn undo), the layout re-derives its
/// state, the killed statement is retried, and the workload continues.
/// Every observation before and after the crash must agree with the
/// reference — recovery resumed the soak, not a fresh database.
TEST(DurableSoakTest, CrashReopenMidSoakKeepsDifferentialAgreement) {
  AppSchema app = testbed::BuildCrmAppSchema();
  const std::string dir = ::testing::TempDir() + "mtdb_soak_durable";
  std::filesystem::remove_all(dir);

  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> fold_db = std::move(*opened);
  auto folded = std::make_unique<ChunkFoldingLayout>(fold_db.get(), &app);
  Database priv_db;
  PrivateTableLayout reference(&priv_db, &app);
  ASSERT_TRUE(folded->Bootstrap().ok());
  ASSERT_TRUE(reference.Bootstrap().ok());

  constexpr int kTenants = 3;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(folded->CreateTenant(t).ok());
    ASSERT_TRUE(reference.CreateTenant(t).ok());
  }
  ASSERT_TRUE(folded->EnableExtension(0, "healthcare_account").ok());
  ASSERT_TRUE(reference.EnableExtension(0, "healthcare_account").ok());

  FaultInjector injector(29);
  int reopens = 0;

  auto reopen_folded = [&]() {
    fold_db->page_store()->set_fault_injector(nullptr);
    folded.reset();
    fold_db.reset();
    auto r = Database::Open(DatabaseOptions::WithPath(dir));
    ASSERT_TRUE(r.ok()) << "reopen: " << r.status().ToString();
    fold_db = std::move(*r);
    folded = std::make_unique<ChunkFoldingLayout>(fold_db.get(), &app);
    Status rec = folded->Recover();
    ASSERT_TRUE(rec.ok()) << "layout recover: " << rec.ToString();
    ++reopens;
  };

  // Executes on the durable side first; an injected kill surfaces as a
  // failed statement on a frozen engine, after which the soak reopens and
  // retries (recovery removed every trace of the killed statement, so the
  // retry is clean). Only then does the reference apply the statement.
  auto both_execute = [&](TenantId t, const std::string& sql,
                          const std::vector<Value>& params = {}) {
    Result<int64_t> a = folded->Execute(t, sql, params);
    if (!a.ok()) {
      ASSERT_TRUE(fold_db->durability()->frozen())
          << sql << ": " << a.status().ToString();
      reopen_folded();
      if (::testing::Test::HasFatalFailure()) return;
      a = folded->Execute(t, sql, params);
    }
    Result<int64_t> b = reference.Execute(t, sql, params);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << sql;
  };
  auto both_query_match = [&](TenantId t, const std::string& sql) {
    auto a = folded->Query(t, sql);
    auto b = reference.Query(t, sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      ASSERT_EQ(a->rows[i].size(), b->rows[i].size());
      for (size_t c = 0; c < a->rows[i].size(); ++c) {
        EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0)
            << sql << " row " << i << " col " << c;
      }
    }
  };

  Rng rng(4177);
  int64_t next_id = 1;
  std::vector<int64_t> live_ids[kTenants];

  for (int op = 0; op < 160; ++op) {
    if (op == 80) {
      // Schedule the kill: the next durable appends run it into a crash
      // a few WAL operations from now, mid-statement.
      FaultSpec spec;
      spec.probability = 1.0;
      spec.skip = 3;
      spec.max_fires = 1;
      injector.Arm(FaultPoint::kCrash, spec);
      fold_db->page_store()->set_fault_injector(&injector);
    }
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
    int kind = static_cast<int>(rng.Uniform(0, 9));
    if (kind < 4) {
      int64_t id = next_id++;
      both_execute(t,
                   "INSERT INTO account (id, campaign_id, name, status, "
                   "amount) VALUES (?, 0, ?, ?, ?)",
                   {Value::Int64(id), Value::String(rng.Word(3, 9)),
                    Value::String(rng.Bernoulli(0.5) ? "open" : "won"),
                    Value::Double(static_cast<double>(
                        rng.Uniform(1, 100000)))});
      live_ids[t].push_back(id);
    } else if (kind < 6 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t,
                   "UPDATE account SET amount = amount + 1, owner = ? "
                   "WHERE id = ?",
                   {Value::String(rng.Word(3, 8)),
                    Value::Int64(live_ids[t][i])});
    } else if (kind < 7 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t, "DELETE FROM account WHERE id = ?",
                   {Value::Int64(live_ids[t][i])});
      live_ids[t].erase(live_ids[t].begin() + static_cast<ptrdiff_t>(i));
    } else {
      both_query_match(t,
                       "SELECT status, COUNT(*), SUM(amount) FROM account "
                       "GROUP BY status ORDER BY status");
    }
    if (::testing::Test::HasFatalFailure()) return;
    if (op % 40 == 39) {
      for (TenantId ct = 0; ct < kTenants; ++ct) {
        both_query_match(ct, "SELECT * FROM account ORDER BY id");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }

  EXPECT_EQ(reopens, 1) << "the scheduled mid-soak crash never fired";
  for (TenantId t = 0; t < kTenants; ++t) {
    both_query_match(t, "SELECT * FROM account ORDER BY id");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Multi-threaded durable crash soak: eight threads insert into eight
/// separate tables of one durable engine, so their statements hold
/// disjoint table latches and allocate pages from the shared store in an
/// interleaved global order while racing to the WAL — the exact shape
/// whose replay used to diverge when group append order disagreed with
/// store allocation order. A kCrash fires mid-run; after the freeze the
/// engine reopens from disk and every table must hold exactly the ids
/// whose INSERTs were acknowledged: a lost acknowledged row, a
/// resurrected unacknowledged one, or a kDataLoss from replay all fail
/// the test. A second (fault-free) eight-thread phase then runs on the
/// recovered engine and the final state is verified through one more
/// clean reopen.
TEST(DurableConcurrentSoakTest, EightThreadCrossTableCrashRecoversExactly) {
  const std::string dir = ::testing::TempDir() + "mtdb_soak_durable_mt";
  std::filesystem::remove_all(dir);

  constexpr int kThreads = 8;
  constexpr int kPhaseOps = 150;  // inserts per thread per phase

  EngineOptions options;
  // Small enough that automatic checkpoints run during the soak, so the
  // crash window covers checkpoint sites as well as append sites.
  options.checkpoint_interval_bytes = 1 * 1024 * 1024;

  auto opened = Database::Open(DatabaseOptions::WithPath(dir, options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  auto table = [](int w) { return "t" + std::to_string(w); };
  for (int w = 0; w < kThreads; ++w) {
    ASSERT_TRUE(db->Execute("CREATE TABLE " + table(w) +
                            " (id BIGINT, payload VARCHAR)")
                    .ok());
    ASSERT_TRUE(db->Execute("CREATE UNIQUE INDEX ux_" + table(w) + " ON " +
                            table(w) + " (id)")
                    .ok());
  }

  // Per-thread acknowledged ids; disjoint id spaces. A statement is
  // acknowledged iff its redo group was durably appended, so after a
  // crash these sets are the exact expected table contents.
  std::vector<int64_t> acked[kThreads];
  auto run_phase = [&](int phase) {
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(static_cast<uint64_t>(phase) * 7919 +
                static_cast<uint64_t>(w) * 131 + 1);
        for (int op = 0; op < kPhaseOps; ++op) {
          int64_t id = static_cast<int64_t>(w + 1) * 1'000'000 +
                       phase * kPhaseOps + op;
          auto r = db->Execute(
              "INSERT INTO " + table(w) + " VALUES (?, ?)",
              {Value::Int64(id), Value::String(rng.Word(4, 24))});
          if (r.ok()) {
            acked[w].push_back(id);
          } else {
            // The only legitimate failure is the frozen engine after the
            // injected crash; anything else is a real bug.
            EXPECT_TRUE(db->durability()->frozen())
                << "thread " << w << ": " << r.status().ToString();
            break;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  };

  auto reconcile = [&](const char* when) {
    for (int w = 0; w < kThreads; ++w) {
      auto r = db->Query("SELECT id FROM " + table(w) + " ORDER BY id");
      ASSERT_TRUE(r.ok()) << when << " " << table(w) << ": "
                          << r.status().ToString();
      std::vector<int64_t> want = acked[w];
      std::sort(want.begin(), want.end());
      ASSERT_EQ(r->rows.size(), want.size())
          << when << " " << table(w)
          << ": acknowledged rows diverged after recovery";
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(r->rows[i][0].AsInt64(), want[i])
            << when << " " << table(w) << " row " << i;
      }
    }
  };

  // Phase 1 under a scheduled kill: with eight appenders the crash point
  // lands mid-flight in several statements at once.
  FaultInjector injector(97);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.skip = 777;
  spec.max_fires = 1;
  injector.Arm(FaultPoint::kCrash, spec);
  db->page_store()->set_fault_injector(&injector);
  run_phase(0);
  EXPECT_TRUE(db->durability()->frozen())
      << "the scheduled mid-soak crash never fired";

  db->page_store()->set_fault_injector(nullptr);
  db.reset();
  auto reopened = Database::Open(DatabaseOptions::WithPath(dir, options));
  ASSERT_TRUE(reopened.ok()) << "recovery: " << reopened.status().ToString();
  db = std::move(*reopened);
  reconcile("post-crash");
  if (::testing::Test::HasFatalFailure()) return;

  // Phase 2, fault-free, proves the recovered engine (free list, op
  // sequence, indexes) sustains the same concurrent workload; one clean
  // reopen then checks the sealed durable state end to end.
  run_phase(1);
  reconcile("post-phase-2");
  if (::testing::Test::HasFatalFailure()) return;
  db.reset();
  reopened = Database::Open(DatabaseOptions::WithPath(dir, options));
  ASSERT_TRUE(reopened.ok()) << "clean reopen: "
                             << reopened.status().ToString();
  db = std::move(*reopened);
  reconcile("post-clean-reopen");
}

// Runs last in this binary: under an instrumented build
// (-DMTDB_LOCKDEP=ON) every test above must have left the lockdep
// registry empty — no latch-order or WAL-protocol violations anywhere
// in the suite's workload.
TEST(LockdepCleanliness, NoViolationsAcrossSuite) {
  if (!analysis::LockdepCompiledIn()) {
    GTEST_SKIP() << "validator not compiled in (build with MTDB_LOCKDEP)";
  }
  std::vector<analysis::Diagnostic> diagnostics =
      analysis::DrainLockdepDiagnostics();
  EXPECT_TRUE(diagnostics.empty()) << analysis::FormatDiagnostics(diagnostics);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
