#ifndef MTDB_TESTBED_MTD_TESTBED_H_
#define MTDB_TESTBED_MTD_TESTBED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "testbed/workload.h"

namespace mtdb {
namespace testbed {

/// Configuration of one §5 run.
struct TestbedConfig {
  /// Schema variability in [0, 1]: 0 = one shared schema instance,
  /// 1 = one instance per tenant (Table 1).
  double schema_variability = 0.0;
  int num_tenants = 100;
  int64_t rows_per_table_per_tenant = 20;
  int worker_sessions = 4;
  /// Cards dealt per run (determines run length deterministically,
  /// instead of the paper's 30-minute wall-clock windows).
  size_t deck_size = 2000;
  uint64_t seed = 42;
  /// Engine memory budget; sized so index roots outgrow the buffer pool
  /// as the instance count rises (the experiment's design, §5).
  uint64_t memory_budget_bytes = 24ull * 1024 * 1024;
  /// Simulated device latency per physical page read (the paper's NFS
  /// appliance); buffer-pool misses then cost real response time.
  uint64_t read_latency_ns = 40000;
};

/// Table 1: number of schema instances for a variability value.
int InstancesFor(double variability, int num_tenants);

/// One row of Table 2.
struct TestbedReport {
  double schema_variability = 0.0;
  int total_tables = 0;
  double baseline_compliance_pct = 0.0;  // filled by CompareToBaseline
  double throughput_per_min = 0.0;
  std::map<ActionClass, double> p95_ms;
  double hit_ratio_data = 0.0;
  double hit_ratio_index = 0.0;
  double elapsed_seconds = 0.0;

  /// The per-class 95% quantiles of this run, used as the baseline for
  /// other runs (the paper baselines on variability 0.0).
  std::map<ActionClass, double> baseline() const { return p95_ms; }
};

/// Sets up a multi-tenant CRM database at the given schema variability,
/// loads tenants, runs the card-deck workload on worker threads, and
/// reports the Table 2 metrics.
class MtdTestbed {
 public:
  explicit MtdTestbed(TestbedConfig config);

  /// Creates schema instances and loads tenant data.
  Status Setup();

  /// Runs the workload; the report's baseline-compliance field is filled
  /// against `baseline` when non-null (pass the variability-0 run's
  /// quantiles), else defaults to 95%.
  Result<TestbedReport> Run(const std::map<ActionClass, double>* baseline);

  Database* db() { return db_.get(); }
  const ResultDatabase& results() const { return results_; }

 private:
  TestbedConfig config_;
  std::unique_ptr<Database> db_;
  ResultDatabase results_;
  int instances_ = 1;
};

/// Prints a TestbedReport row (markdown-ish) to stdout.
void PrintReport(const TestbedReport& report);

}  // namespace testbed
}  // namespace mtdb

#endif  // MTDB_TESTBED_MTD_TESTBED_H_
