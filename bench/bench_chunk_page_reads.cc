// Reproduces Figure 10: "Number of logical page reads" for Q2 across the
// conventional layout and Chunk Tables of various widths. Every join
// with an additional base table increases the logical page reads — the
// trade-off between compile-time and runtime meta-data interpretation.
#include <cstdio>
#include <cstdlib>

#include "chunk_bench_common.h"

namespace mtdb {
namespace bench {
namespace {

int Main() {
  ChunkBenchConfig config;
  if (const char* env = std::getenv("MTDB_BENCH_PARENTS")) {
    config.parents = std::atoi(env);
  }
  std::printf("=== Figure 10: Q2 logical page reads per execution ===\n");

  std::vector<std::unique_ptr<Deployment>> deployments;
  {
    auto conv = MakeDeployment(config, 0);
    if (!conv.ok()) return 1;
    deployments.push_back(std::move(*conv));
  }
  for (int width : config.widths) {
    auto d = MakeDeployment(config, width);
    if (!d.ok()) return 1;
    deployments.push_back(std::move(*d));
  }

  std::printf("%-6s", "scale");
  for (const auto& d : deployments) std::printf(" %12s", d->label.c_str());
  std::printf("\n");

  std::vector<Value> params{Value::Int64(config.parents / 2)};
  for (int scale = 6; scale <= 90; scale += 6) {
    std::printf("%-6d", scale);
    for (const auto& d : deployments) {
      auto r = RunQuery(d.get(), BuildQ2(scale), params, /*reps=*/3,
                        /*cold=*/false);
      if (!r.ok()) {
        std::fprintf(stderr, "\nquery: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.1f", r->logical_reads);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: reads grow with the number of chunks touched;\n"
      "chunk3 reads an order of magnitude more pages than conventional\n"
      "at high scale factors (Fig. 10).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
