file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_behavior.dir/bench_optimizer_behavior.cc.o"
  "CMakeFiles/bench_optimizer_behavior.dir/bench_optimizer_behavior.cc.o.d"
  "bench_optimizer_behavior"
  "bench_optimizer_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
