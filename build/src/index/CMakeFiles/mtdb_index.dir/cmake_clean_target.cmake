file(REMOVE_RECURSE
  "libmtdb_index.a"
)
